#include "proto/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace fibbing::proto {

namespace {

/// The wire Hello carries whole-second intervals; a disabled (<= 0) timer
/// advertises the RFC defaults so liveness-off sessions interoperate with
/// each other (both sides advertise the same values either way).
std::uint32_t wire_interval(double seconds, std::uint32_t fallback) {
  if (seconds <= 0.0) return fallback;
  return static_cast<std::uint32_t>(std::lround(seconds));
}

/// Age as transmitted: one InfTransDelay hop further along, clamped so a
/// flushing (MaxAge) instance stays exactly at MaxAge (RFC 13.3).
std::uint16_t aged_for_transmit(std::uint16_t age) {
  return age >= kMaxAge - kInfTransDelay ? kMaxAge
                                         : static_cast<std::uint16_t>(age + kInfTransDelay);
}

}  // namespace

const char* to_string(NeighborState state) {
  switch (state) {
    case NeighborState::kDown: return "Down";
    case NeighborState::kInit: return "Init";
    case NeighborState::kTwoWay: return "2-Way";
    case NeighborState::kExStart: return "ExStart";
    case NeighborState::kExchange: return "Exchange";
    case NeighborState::kLoading: return "Loading";
    case NeighborState::kFull: return "Full";
  }
  return "unknown";
}

SessionCounters& SessionCounters::operator+=(const SessionCounters& other) {
  packets_sent += other.packets_sent;
  bytes_sent += other.bytes_sent;
  hellos_sent += other.hellos_sent;
  dds_sent += other.dds_sent;
  dd_headers_sent += other.dd_headers_sent;
  lsrs_sent += other.lsrs_sent;
  ls_requests_sent += other.ls_requests_sent;
  lsus_sent += other.lsus_sent;
  lsas_sent += other.lsas_sent;
  lsacks_sent += other.lsacks_sent;
  retransmissions += other.retransmissions;
  hellos_rejected += other.hellos_rejected;
  return *this;
}

NeighborSession::NeighborSession(std::uint32_t self_id, std::uint32_t peer_id,
                                 DatabaseFacade& db, util::Scheduler& events,
                                 SessionConfig config, SendFn send)
    : self_id_(self_id),
      peer_id_(peer_id),
      db_(db),
      events_(events),
      config_(config),
      send_(std::move(send)) {
  FIB_ASSERT(self_id_ != peer_id_, "NeighborSession: self adjacency");
  FIB_ASSERT(send_ != nullptr, "NeighborSession: transport not wired");
}

NeighborSession::~NeighborSession() {
  events_.cancel(rxmt_timer_);
  events_.cancel(flood_flush_timer_);
  events_.cancel(ack_timer_);
  events_.cancel(hello_timer_);
  events_.cancel(inactivity_timer_);
  events_.cancel(watchdog_timer_);
}

void NeighborSession::start() {
  FIB_ASSERT(state_ == NeighborState::kDown, "NeighborSession::start: not Down");
  send_hello_();
  if (config_.hello_interval_s > 0.0) {
    arm_hello_timer_();
    // A peer that never speaks at all must still be declared dead.
    arm_inactivity_timer_();
  }
}

void NeighborSession::shutdown() {
  state_ = NeighborState::kDown;
  heard_peer_ = false;
  introduced_self_ = false;
  reset_exchange_();
  events_.cancel(hello_timer_);
  hello_timer_ = {};
  events_.cancel(inactivity_timer_);
  inactivity_timer_ = {};
}

void NeighborSession::reset_exchange_() {
  master_ = false;
  dd_seq_ = 0;
  sent_all_ = false;
  peer_done_ = false;
  summary_.clear();
  summary_pos_ = 0;
  last_dd_.reset();
  wanted_.clear();
  wanted_ids_.clear();
  outstanding_.clear();
  rxmt_.clear();
  pending_flood_.clear();
  pending_ack_.clear();
  events_.cancel(rxmt_timer_);
  rxmt_timer_ = {};
  events_.cancel(flood_flush_timer_);
  flood_flush_timer_ = {};
  events_.cancel(ack_timer_);
  ack_timer_ = {};
  events_.cancel(watchdog_timer_);
  watchdog_timer_ = {};
}

void NeighborSession::fire_event_(SessionEvent event) {
  if (on_event_) on_event_(event);
}

void NeighborSession::send_packet_(Packet&& packet) {
  packet.router_id = self_id_;
  auto buffer = std::make_shared<const Buffer>(encode_packet(packet));
  ++counters_.packets_sent;
  counters_.bytes_sent += buffer->size();
  send_(buffer);
}

void NeighborSession::send_hello_() {
  HelloBody hello;
  hello.hello_interval =
      static_cast<std::uint16_t>(wire_interval(config_.hello_interval_s, 10));
  hello.dead_interval = wire_interval(config_.dead_interval_s, 40);
  if (heard_peer_) {
    hello.neighbors.push_back(peer_id_);
    introduced_self_ = true;
  }
  ++counters_.hellos_sent;
  send_packet_(Packet{self_id_, 0, std::move(hello)});
}

void NeighborSession::arm_hello_timer_() {
  hello_timer_ = events_.schedule_in(config_.hello_interval_s, [this] {
    hello_timer_ = {};
    send_hello_();
    arm_hello_timer_();
  });
}

void NeighborSession::arm_inactivity_timer_() {
  if (config_.dead_interval_s <= 0.0) return;
  events_.cancel(inactivity_timer_);
  inactivity_timer_ = events_.schedule_in(config_.dead_interval_s, [this] {
    inactivity_timer_ = {};
    on_inactivity_();
  });
}

void NeighborSession::on_inactivity_() {
  // RFC 10.3 InactivityTimer: RouterDeadInterval of Hello silence. The
  // adjacency is dead; fall to Down but keep sending periodic Hellos so a
  // recovered peer can bring it back. The timer stays dormant until the
  // next Hello actually arrives.
  FIB_LOG(kInfo, "proto") << self_id_ << ": neighbor " << peer_id_
                          << " dead (RouterDeadInterval expired in "
                          << to_string(state_) << ")";
  reset_exchange_();
  state_ = NeighborState::kDown;
  heard_peer_ = false;
  introduced_self_ = false;
  // Fired even from Init/TwoWay: the owner may be advertising the link from
  // configuration (a peer that never came up is just as unreachable as one
  // that died mid-adjacency) and must stop either way.
  fire_event_(SessionEvent::kAdjacencyLost);
}

bool NeighborSession::hello_params_ok_(const HelloBody& hello) {
  // RFC 10.5: HelloInterval, RouterDeadInterval and (on non-p2p networks)
  // the network mask must match ours exactly, else the Hello is dropped.
  // Our interfaces are p2p (mask 0 both sides), so the mask check only
  // trips on a genuinely malformed peer.
  HelloBody ours;
  ours.hello_interval =
      static_cast<std::uint16_t>(wire_interval(config_.hello_interval_s, 10));
  ours.dead_interval = wire_interval(config_.dead_interval_s, 40);
  if (hello.hello_interval == ours.hello_interval &&
      hello.dead_interval == ours.dead_interval &&
      hello.network_mask == ours.network_mask) {
    return true;
  }
  ++counters_.hellos_rejected;
  FIB_LOG(kWarn, "proto") << self_id_ << ": Hello from " << peer_id_
                          << " rejected (10.5 mismatch: interval "
                          << hello.hello_interval << "/" << ours.hello_interval
                          << ", dead " << hello.dead_interval << "/"
                          << ours.dead_interval << ")";
  return false;
}

void NeighborSession::process_hello_(const HelloBody& hello) {
  if (!hello_params_ok_(hello)) return;
  heard_peer_ = true;
  if (config_.hello_interval_s > 0.0) arm_inactivity_timer_();
  const bool lists_us =
      std::find(hello.neighbors.begin(), hello.neighbors.end(), self_id_) !=
      hello.neighbors.end();
  if (!lists_us) {
    if (state_ >= NeighborState::kTwoWay) {
      // RFC 10.2 1-WayReceived: the peer restarted and forgot us. Drop back
      // and re-introduce ourselves; the exchange restarts from scratch.
      FIB_LOG(kDebug, "proto") << self_id_ << ": 1-way from " << peer_id_
                               << ", restarting adjacency";
      const bool was_usable = state_ >= NeighborState::kExStart;
      reset_exchange_();
      state_ = NeighborState::kInit;
      introduced_self_ = false;
      if (was_usable) fire_event_(SessionEvent::kAdjacencyLost);
    } else if (state_ == NeighborState::kDown) {
      state_ = NeighborState::kInit;
    }
    if (!introduced_self_) send_hello_();
    return;
  }
  if (state_ <= NeighborState::kInit) {
    // 2-WayReceived; p2p interfaces always form the adjacency, so 2-Way is
    // transient and we negotiate the exchange immediately.
    if (!introduced_self_) send_hello_();  // let the peer pass its 2-way check
    enter_exstart_();
  }
  // Hellos at ExStart or later are keepalives; nothing to do.
}

void NeighborSession::receive(const Packet& packet) {
  if (const auto* hello = std::get_if<HelloBody>(&packet.body)) {
    process_hello_(*hello);
  } else if (const auto* dd = std::get_if<DatabaseDescriptionBody>(&packet.body)) {
    process_dd_(*dd);
  } else if (const auto* lsr = std::get_if<LsRequestBody>(&packet.body)) {
    process_lsr_(*lsr);
  } else if (const auto* lsu = std::get_if<LsUpdateBody>(&packet.body)) {
    process_lsu_(*lsu);
  } else {
    process_lsack_(std::get<LsAckBody>(packet.body));
  }
}

void NeighborSession::enter_exstart_() {
  reset_exchange_();
  state_ = NeighborState::kExStart;
  master_ = self_id_ > peer_id_;  // RFC 10.6: larger router id wins mastership
  dd_seq_ = self_id_;             // any initial value; ours if we stay master
  send_dd_page_(/*init=*/true);
  arm_watchdog_();
}

void NeighborSession::enter_full_() {
  state_ = NeighborState::kFull;
  events_.cancel(watchdog_timer_);
  watchdog_timer_ = {};
  FIB_LOG(kDebug, "proto") << self_id_ << ": adjacency with " << peer_id_
                           << " Full";
  fire_event_(SessionEvent::kAdjacencyFull);
}

void NeighborSession::take_snapshot_() {
  summary_ = db_.summarize();
  summary_pos_ = 0;
  sent_all_ = false;
}

void NeighborSession::send_dd_page_(bool init) {
  DatabaseDescriptionBody dd;
  dd.interface_mtu = config_.interface_mtu;
  dd.dd_sequence = dd_seq_;
  if (init) {
    dd.flags = kDdFlagInit | kDdFlagMore | kDdFlagMasterSlave;
  } else {
    const std::size_t take =
        std::min(config_.max_dd_headers, summary_.size() - summary_pos_);
    dd.headers.assign(summary_.begin() + static_cast<std::ptrdiff_t>(summary_pos_),
                      summary_.begin() + static_cast<std::ptrdiff_t>(summary_pos_ + take));
    summary_pos_ += take;
    sent_all_ = summary_pos_ >= summary_.size();
    dd.flags = static_cast<std::uint8_t>((master_ ? kDdFlagMasterSlave : 0) |
                                         (sent_all_ ? 0 : kDdFlagMore));
    counters_.dd_headers_sent += dd.headers.size();
    last_dd_ = dd;
  }
  ++counters_.dds_sent;
  send_packet_(Packet{self_id_, 0, std::move(dd)});
}

void NeighborSession::process_dd_(const DatabaseDescriptionBody& dd) {
  if (state_ < NeighborState::kExStart) return;  // RFC 10.8: reject early DDs
  if (state_ >= NeighborState::kExchange && (dd.flags & kDdFlagInit)) {
    // RFC 10.6 SeqNumberMismatch: the peer restarted its exchange. Restart
    // ours; negotiation resolves mastership again.
    FIB_LOG(kDebug, "proto") << self_id_ << ": DD init from " << peer_id_
                             << " mid-exchange, restarting";
    enter_exstart_();
    // Fall through into ExStart handling of this same packet below.
  }

  if (state_ == NeighborState::kExStart) {
    if (!master_ && (dd.flags & kDdFlagInit) && (dd.flags & kDdFlagMasterSlave)) {
      // The master's opening DD: adopt its sequence number and respond with
      // our first summary page (negotiation done, RFC 10.8).
      dd_seq_ = dd.dd_sequence;
      take_snapshot_();
      state_ = NeighborState::kExchange;
      peer_done_ = false;
      send_dd_page_(/*init=*/false);
    } else if (master_ && !(dd.flags & kDdFlagInit) && dd.dd_sequence == dd_seq_) {
      // The slave echoed our sequence: negotiation done, start exchanging.
      take_snapshot_();
      state_ = NeighborState::kExchange;
      process_summary_(dd.headers);
      peer_done_ = !(dd.flags & kDdFlagMore);
      ++dd_seq_;
      send_dd_page_(/*init=*/false);
      if (sent_all_ && peer_done_) finish_exchange_();
    }
    // Anything else (the lower-id peer's own init DD) is silently dropped;
    // the peer answers *our* init DD as slave.
    return;
  }
  if (state_ != NeighborState::kExchange) return;

  if (master_) {
    if (dd.dd_sequence != dd_seq_) return;  // stale echo of an older poll: drop
    process_summary_(dd.headers);
    peer_done_ = !(dd.flags & kDdFlagMore);
    if (sent_all_ && peer_done_) {
      finish_exchange_();
      return;
    }
    ++dd_seq_;
    send_dd_page_(/*init=*/false);
    if (sent_all_ && peer_done_) finish_exchange_();
  } else {
    if (dd.dd_sequence != dd_seq_ + 1) {
      // RFC 10.8 slave: a duplicate of the last poll means our response was
      // lost -- repeat it verbatim. Anything else is a stale echo.
      if (dd.dd_sequence == dd_seq_ && last_dd_.has_value()) {
        ++counters_.retransmissions;
        ++counters_.dds_sent;
        send_packet_(Packet{self_id_, 0, DatabaseDescriptionBody(*last_dd_)});
      }
      return;
    }
    dd_seq_ = dd.dd_sequence;
    process_summary_(dd.headers);
    peer_done_ = !(dd.flags & kDdFlagMore);
    send_dd_page_(/*init=*/false);
    if (peer_done_ && sent_all_) finish_exchange_();
  }
}

void NeighborSession::process_summary_(const std::vector<LsaHeader>& headers) {
  for (const LsaHeader& header : headers) {
    const LsaIdentity id = identity_of(header);
    const WireLsa* mine = db_.lookup(id);
    if (mine != nullptr && compare_instances(header, mine->header) <= 0) continue;
    if (wanted_ids_.contains(id) || outstanding_.contains(id)) continue;
    wanted_.push_back(
        LsRequestEntry{static_cast<std::uint32_t>(header.type), header.link_state_id,
                       header.advertising_router});
    wanted_ids_.insert(id);
  }
}

void NeighborSession::finish_exchange_() {
  if (wanted_.empty() && outstanding_.empty()) {
    enter_full_();
    return;
  }
  state_ = NeighborState::kLoading;
  send_next_requests_();
}

void NeighborSession::send_next_requests_() {
  if (wanted_.empty()) {
    if (outstanding_.empty()) enter_full_();
    return;
  }
  LsRequestBody lsr;
  while (!wanted_.empty() && lsr.entries.size() < config_.max_request_entries) {
    const LsRequestEntry entry = wanted_.front();
    wanted_.pop_front();
    const LsaIdentity id{static_cast<WireLsaType>(entry.type), entry.link_state_id,
                         entry.advertising_router};
    wanted_ids_.erase(id);
    outstanding_.emplace(id, entry);
    lsr.entries.push_back(entry);
  }
  counters_.ls_requests_sent += lsr.entries.size();
  ++counters_.lsrs_sent;
  send_packet_(Packet{self_id_, 0, std::move(lsr)});
}

void NeighborSession::send_update_batches_(const std::vector<const WireLsa*>& lsas) {
  LsUpdateBody batch;
  std::size_t batch_bytes = 0;
  const auto flush = [&] {
    if (batch.lsas.empty()) return;
    counters_.lsas_sent += batch.lsas.size();
    ++counters_.lsus_sent;
    send_packet_(Packet{self_id_, 0, std::move(batch)});
    batch = LsUpdateBody{};
    batch_bytes = 0;
  };
  for (const WireLsa* lsa : lsas) {
    // The wire length field is 16 bits; flush before a batch could ever
    // approach it. A single oversized LSA still travels alone.
    if (!batch.lsas.empty() &&
        batch_bytes + lsa->header.length > config_.max_update_bytes) {
      flush();
    }
    batch.lsas.push_back(*lsa);
    batch.lsas.back().header.age = aged_for_transmit(lsa->header.age);
    batch_bytes += lsa->header.length;
  }
  flush();
}

void NeighborSession::process_lsr_(const LsRequestBody& lsr) {
  if (state_ < NeighborState::kExchange) return;
  std::vector<const WireLsa*> response;
  for (const LsRequestEntry& entry : lsr.entries) {
    const LsaIdentity id{static_cast<WireLsaType>(entry.type), entry.link_state_id,
                         entry.advertising_router};
    const WireLsa* mine = db_.lookup(id);
    if (mine == nullptr) {
      // RFC 10.7 BadLSReq. A truthful summary makes this unreachable in the
      // simulator; tolerate it rather than tearing the adjacency down.
      FIB_LOG(kWarn, "proto") << self_id_ << ": LS request from " << peer_id_
                              << " for an instance we do not hold";
      continue;
    }
    response.push_back(mine);
  }
  send_update_batches_(response);
}

void NeighborSession::erase_rxmt_(std::map<LsaIdentity, WireLsa>::iterator it) {
  const LsaIdentity id = it->first;
  rxmt_.erase(it);
  if (rxmt_.empty()) {
    events_.cancel(rxmt_timer_);
    rxmt_timer_ = {};
  }
  db_.on_flood_acked(id);
}

void NeighborSession::process_lsu_(const LsUpdateBody& lsu) {
  if (state_ < NeighborState::kExchange) return;
  LsUpdateBody newer_back;  // RFC 13(8): answer stale instances with ours
  for (const WireLsa& lsa : lsu.lsas) {
    const LsaIdentity id = identity_of(lsa.header);
    // Implied acknowledgment: an equal-or-newer instance from the peer
    // proves it holds what we flooded.
    if (const auto it = rxmt_.find(id);
        it != rxmt_.end() && compare_instances(lsa.header, it->second.header) >= 0) {
      erase_rxmt_(it);
    }
    // An equal-or-newer arrival also supersedes a flood still coalescing
    // toward this peer: sending ours would only bounce a duplicate back.
    // This counts as an implied acknowledgment too -- if it was the last
    // reference to a MaxAge tombstone, the database must hear about it or
    // the RFC 14 flush check never re-runs and the tombstone is stranded.
    if (const auto it = pending_flood_.find(id);
        it != pending_flood_.end() &&
        compare_instances(lsa.header, it->second.header) >= 0) {
      pending_flood_.erase(it);
      db_.on_flood_acked(id);
    }
    switch (db_.deliver(lsa, peer_id_)) {
      case DatabaseFacade::DeliverResult::kNewer:
      case DatabaseFacade::DeliverResult::kDuplicate:
        queue_ack_(lsa.header);
        break;
      case DatabaseFacade::DeliverResult::kStale:
        if (const WireLsa* mine = db_.lookup(id)) newer_back.lsas.push_back(*mine);
        break;
    }
    // Loading bookkeeping: however the instance got here (response or
    // concurrent flood), it is no longer wanted.
    if (wanted_ids_.erase(id) > 0) {
      std::erase_if(wanted_, [&](const LsRequestEntry& e) {
        return e.link_state_id == id.link_state_id &&
               e.advertising_router == id.advertising_router &&
               static_cast<WireLsaType>(e.type) == id.type;
      });
    }
    outstanding_.erase(id);
  }
  if (config_.ack_delay_s <= 0.0) flush_pending_acks_();
  if (!newer_back.lsas.empty()) {
    std::vector<const WireLsa*> ours;
    ours.reserve(newer_back.lsas.size());
    for (const WireLsa& lsa : newer_back.lsas) ours.push_back(&lsa);
    send_update_batches_(ours);
  }
  if (state_ == NeighborState::kLoading && outstanding_.empty()) {
    send_next_requests_();
  }
}

void NeighborSession::queue_ack_(const LsaHeader& header) {
  pending_ack_.push_back(header);
  if (config_.ack_delay_s <= 0.0) return;  // process_lsu_ flushes per packet
  if (ack_timer_.valid()) return;
  ack_timer_ = events_.schedule_in(config_.ack_delay_s, [this] {
    ack_timer_ = {};
    flush_pending_acks_();
  });
}

void NeighborSession::flush_pending_acks_() {
  if (pending_ack_.empty()) return;
  LsAckBody ack;
  ack.headers = std::move(pending_ack_);
  pending_ack_.clear();
  ++counters_.lsacks_sent;
  send_packet_(Packet{self_id_, 0, std::move(ack)});
}

void NeighborSession::process_lsack_(const LsAckBody& ack) {
  if (state_ < NeighborState::kExchange) return;
  for (const LsaHeader& header : ack.headers) {
    const auto it = rxmt_.find(identity_of(header));
    if (it == rxmt_.end()) continue;
    if (compare_instances(header, it->second.header) >= 0) erase_rxmt_(it);
  }
}

void NeighborSession::flood(const WireLsa& lsa) {
  if (state_ < NeighborState::kExchange) return;  // DD snapshot covers it
  if (config_.flood_batch_window_s <= 0.0) {
    rxmt_[identity_of(lsa.header)] = lsa;
    send_update_batches_({&lsa});
    schedule_rxmt_();
    return;
  }
  // RFC 13.5: coalesce floods landing within the batch window into one LS
  // Update. A newer instance of a queued identity supersedes it in place,
  // so a rapid re-origination costs one transmission, not two.
  pending_flood_.insert_or_assign(identity_of(lsa.header), lsa);
  arm_flood_flush_();
}

void NeighborSession::arm_flood_flush_() {
  if (flood_flush_timer_.valid()) return;
  flood_flush_timer_ = events_.schedule_in(config_.flood_batch_window_s, [this] {
    flood_flush_timer_ = {};
    flush_pending_floods_();
  });
}

void NeighborSession::flush_pending_floods_() {
  if (pending_flood_.empty() || state_ < NeighborState::kExchange) {
    pending_flood_.clear();
    return;
  }
  std::vector<const WireLsa*> batch;
  batch.reserve(pending_flood_.size());
  for (auto& [id, lsa] : pending_flood_) {
    batch.push_back(&rxmt_.insert_or_assign(id, std::move(lsa)).first->second);
  }
  pending_flood_.clear();
  send_update_batches_(batch);
  schedule_rxmt_();
}

void NeighborSession::schedule_rxmt_() {
  if (rxmt_timer_.valid()) return;
  rxmt_timer_ = events_.schedule_in(config_.rxmt_interval_s, [this] {
    rxmt_timer_ = {};
    on_rxmt_timer_();
  });
}

void NeighborSession::on_rxmt_timer_() {
  if (state_ < NeighborState::kExchange || rxmt_.empty()) return;
  std::vector<const WireLsa*> unacked;
  unacked.reserve(rxmt_.size());
  for (const auto& [id, lsa] : rxmt_) unacked.push_back(&lsa);
  counters_.retransmissions += unacked.size();
  send_update_batches_(unacked);
  schedule_rxmt_();
}

void NeighborSession::arm_watchdog_() {
  events_.cancel(watchdog_timer_);
  watchdog_timer_ = events_.schedule_in(config_.rxmt_interval_s, [this] {
    watchdog_timer_ = {};
    on_watchdog_();
  });
}

void NeighborSession::on_watchdog_() {
  // Lossy-link safety net: ExStart..Loading normally completes well inside
  // one RxmtInterval, so a fire here means a DD, LSR or LSU went missing.
  // Re-issue the last unanswered packet; every receive path tolerates
  // duplicates (the slave even re-answers a duplicate poll above).
  switch (state_) {
    case NeighborState::kExStart:
      ++counters_.retransmissions;
      send_dd_page_(/*init=*/true);
      break;
    case NeighborState::kExchange:
      if (master_ && last_dd_.has_value()) {
        ++counters_.retransmissions;
        ++counters_.dds_sent;
        send_packet_(Packet{self_id_, 0, DatabaseDescriptionBody(*last_dd_)});
      }
      break;
    case NeighborState::kLoading: {
      if (outstanding_.empty()) break;
      LsRequestBody lsr;
      for (const auto& [id, entry] : outstanding_) {
        if (lsr.entries.size() >= config_.max_request_entries) break;
        lsr.entries.push_back(entry);
      }
      counters_.retransmissions += lsr.entries.size();
      ++counters_.lsrs_sent;
      send_packet_(Packet{self_id_, 0, std::move(lsr)});
      break;
    }
    default:
      return;  // Full or torn down: the watchdog retires
  }
  arm_watchdog_();
}

}  // namespace fibbing::proto
