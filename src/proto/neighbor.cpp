#include "proto/neighbor.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace fibbing::proto {

const char* to_string(NeighborState state) {
  switch (state) {
    case NeighborState::kDown: return "Down";
    case NeighborState::kInit: return "Init";
    case NeighborState::kTwoWay: return "2-Way";
    case NeighborState::kExStart: return "ExStart";
    case NeighborState::kExchange: return "Exchange";
    case NeighborState::kLoading: return "Loading";
    case NeighborState::kFull: return "Full";
  }
  return "unknown";
}

SessionCounters& SessionCounters::operator+=(const SessionCounters& other) {
  packets_sent += other.packets_sent;
  bytes_sent += other.bytes_sent;
  hellos_sent += other.hellos_sent;
  dds_sent += other.dds_sent;
  dd_headers_sent += other.dd_headers_sent;
  lsrs_sent += other.lsrs_sent;
  ls_requests_sent += other.ls_requests_sent;
  lsus_sent += other.lsus_sent;
  lsas_sent += other.lsas_sent;
  lsacks_sent += other.lsacks_sent;
  retransmissions += other.retransmissions;
  return *this;
}

NeighborSession::NeighborSession(std::uint32_t self_id, std::uint32_t peer_id,
                                 DatabaseFacade& db, util::Scheduler& events,
                                 SessionConfig config, SendFn send)
    : self_id_(self_id),
      peer_id_(peer_id),
      db_(db),
      events_(events),
      config_(config),
      send_(std::move(send)) {
  FIB_ASSERT(self_id_ != peer_id_, "NeighborSession: self adjacency");
  FIB_ASSERT(send_ != nullptr, "NeighborSession: transport not wired");
}

NeighborSession::~NeighborSession() { events_.cancel(rxmt_timer_); }

void NeighborSession::start() {
  FIB_ASSERT(state_ == NeighborState::kDown, "NeighborSession::start: not Down");
  send_hello_();
}

void NeighborSession::shutdown() {
  state_ = NeighborState::kDown;
  heard_peer_ = false;
  introduced_self_ = false;
  reset_exchange_();
}

void NeighborSession::reset_exchange_() {
  master_ = false;
  dd_seq_ = 0;
  sent_all_ = false;
  peer_done_ = false;
  summary_.clear();
  summary_pos_ = 0;
  wanted_.clear();
  wanted_ids_.clear();
  outstanding_.clear();
  rxmt_.clear();
  events_.cancel(rxmt_timer_);
  rxmt_timer_ = {};
}

void NeighborSession::send_packet_(Packet&& packet) {
  packet.router_id = self_id_;
  auto buffer = std::make_shared<const Buffer>(encode_packet(packet));
  ++counters_.packets_sent;
  counters_.bytes_sent += buffer->size();
  send_(buffer);
}

void NeighborSession::send_hello_() {
  HelloBody hello;
  if (heard_peer_) {
    hello.neighbors.push_back(peer_id_);
    introduced_self_ = true;
  }
  ++counters_.hellos_sent;
  send_packet_(Packet{self_id_, 0, std::move(hello)});
}

void NeighborSession::receive(const Packet& packet) {
  if (const auto* hello = std::get_if<HelloBody>(&packet.body)) {
    process_hello_(*hello);
  } else if (const auto* dd = std::get_if<DatabaseDescriptionBody>(&packet.body)) {
    process_dd_(*dd);
  } else if (const auto* lsr = std::get_if<LsRequestBody>(&packet.body)) {
    process_lsr_(*lsr);
  } else if (const auto* lsu = std::get_if<LsUpdateBody>(&packet.body)) {
    process_lsu_(*lsu);
  } else {
    process_lsack_(std::get<LsAckBody>(packet.body));
  }
}

void NeighborSession::process_hello_(const HelloBody& hello) {
  heard_peer_ = true;
  const bool lists_us =
      std::find(hello.neighbors.begin(), hello.neighbors.end(), self_id_) !=
      hello.neighbors.end();
  if (!lists_us) {
    if (state_ >= NeighborState::kTwoWay) {
      // RFC 10.2 1-WayReceived: the peer restarted and forgot us. Drop back
      // and re-introduce ourselves; the exchange restarts from scratch.
      FIB_LOG(kDebug, "proto") << self_id_ << ": 1-way from " << peer_id_
                               << ", restarting adjacency";
      reset_exchange_();
      state_ = NeighborState::kInit;
      introduced_self_ = false;
    } else if (state_ == NeighborState::kDown) {
      state_ = NeighborState::kInit;
    }
    if (!introduced_self_) send_hello_();
    return;
  }
  if (state_ <= NeighborState::kInit) {
    // 2-WayReceived; p2p interfaces always form the adjacency, so 2-Way is
    // transient and we negotiate the exchange immediately.
    if (!introduced_self_) send_hello_();  // let the peer pass its 2-way check
    enter_exstart_();
  }
  // Hellos at ExStart or later are keepalives; nothing to do.
}

void NeighborSession::enter_exstart_() {
  reset_exchange_();
  state_ = NeighborState::kExStart;
  master_ = self_id_ > peer_id_;  // RFC 10.6: larger router id wins mastership
  dd_seq_ = self_id_;             // any initial value; ours if we stay master
  send_dd_page_(/*init=*/true);
}

void NeighborSession::take_snapshot_() {
  summary_ = db_.summarize();
  summary_pos_ = 0;
  sent_all_ = false;
}

void NeighborSession::send_dd_page_(bool init) {
  DatabaseDescriptionBody dd;
  dd.interface_mtu = config_.interface_mtu;
  dd.dd_sequence = dd_seq_;
  if (init) {
    dd.flags = kDdFlagInit | kDdFlagMore | kDdFlagMasterSlave;
  } else {
    const std::size_t take =
        std::min(config_.max_dd_headers, summary_.size() - summary_pos_);
    dd.headers.assign(summary_.begin() + static_cast<std::ptrdiff_t>(summary_pos_),
                      summary_.begin() + static_cast<std::ptrdiff_t>(summary_pos_ + take));
    summary_pos_ += take;
    sent_all_ = summary_pos_ >= summary_.size();
    dd.flags = static_cast<std::uint8_t>((master_ ? kDdFlagMasterSlave : 0) |
                                         (sent_all_ ? 0 : kDdFlagMore));
    counters_.dd_headers_sent += dd.headers.size();
  }
  ++counters_.dds_sent;
  send_packet_(Packet{self_id_, 0, std::move(dd)});
}

void NeighborSession::process_dd_(const DatabaseDescriptionBody& dd) {
  if (state_ < NeighborState::kExStart) return;  // RFC 10.8: reject early DDs
  if (state_ >= NeighborState::kExchange && (dd.flags & kDdFlagInit)) {
    // RFC 10.6 SeqNumberMismatch: the peer restarted its exchange. Restart
    // ours; negotiation resolves mastership again.
    FIB_LOG(kDebug, "proto") << self_id_ << ": DD init from " << peer_id_
                             << " mid-exchange, restarting";
    enter_exstart_();
    // Fall through into ExStart handling of this same packet below.
  }

  if (state_ == NeighborState::kExStart) {
    if (!master_ && (dd.flags & kDdFlagInit) && (dd.flags & kDdFlagMasterSlave)) {
      // The master's opening DD: adopt its sequence number and respond with
      // our first summary page (negotiation done, RFC 10.8).
      dd_seq_ = dd.dd_sequence;
      take_snapshot_();
      state_ = NeighborState::kExchange;
      peer_done_ = false;
      send_dd_page_(/*init=*/false);
    } else if (master_ && !(dd.flags & kDdFlagInit) && dd.dd_sequence == dd_seq_) {
      // The slave echoed our sequence: negotiation done, start exchanging.
      take_snapshot_();
      state_ = NeighborState::kExchange;
      process_summary_(dd.headers);
      peer_done_ = !(dd.flags & kDdFlagMore);
      ++dd_seq_;
      send_dd_page_(/*init=*/false);
      if (sent_all_ && peer_done_) finish_exchange_();
    }
    // Anything else (the lower-id peer's own init DD) is silently dropped;
    // the peer answers *our* init DD as slave.
    return;
  }
  if (state_ != NeighborState::kExchange) return;

  if (master_) {
    if (dd.dd_sequence != dd_seq_) return;  // stale echo of an older poll: drop
    process_summary_(dd.headers);
    peer_done_ = !(dd.flags & kDdFlagMore);
    if (sent_all_ && peer_done_) {
      finish_exchange_();
      return;
    }
    ++dd_seq_;
    send_dd_page_(/*init=*/false);
    if (sent_all_ && peer_done_) finish_exchange_();
  } else {
    if (dd.dd_sequence != dd_seq_ + 1) return;  // duplicate of the last poll
    dd_seq_ = dd.dd_sequence;
    process_summary_(dd.headers);
    peer_done_ = !(dd.flags & kDdFlagMore);
    send_dd_page_(/*init=*/false);
    if (peer_done_ && sent_all_) finish_exchange_();
  }
}

void NeighborSession::process_summary_(const std::vector<LsaHeader>& headers) {
  for (const LsaHeader& header : headers) {
    const LsaIdentity id = identity_of(header);
    const WireLsa* mine = db_.lookup(id);
    if (mine != nullptr && compare_instances(header, mine->header) <= 0) continue;
    if (wanted_ids_.contains(id) || outstanding_.contains(id)) continue;
    wanted_.push_back(
        LsRequestEntry{static_cast<std::uint32_t>(header.type), header.link_state_id,
                       header.advertising_router});
    wanted_ids_.insert(id);
  }
}

void NeighborSession::finish_exchange_() {
  if (wanted_.empty() && outstanding_.empty()) {
    state_ = NeighborState::kFull;
    FIB_LOG(kDebug, "proto") << self_id_ << ": adjacency with " << peer_id_
                             << " Full";
    return;
  }
  state_ = NeighborState::kLoading;
  send_next_requests_();
}

void NeighborSession::send_next_requests_() {
  if (wanted_.empty()) {
    if (outstanding_.empty()) {
      state_ = NeighborState::kFull;
      FIB_LOG(kDebug, "proto") << self_id_ << ": adjacency with " << peer_id_
                               << " Full (loaded)";
    }
    return;
  }
  LsRequestBody lsr;
  while (!wanted_.empty() && lsr.entries.size() < config_.max_request_entries) {
    const LsRequestEntry entry = wanted_.front();
    wanted_.pop_front();
    const LsaIdentity id{static_cast<WireLsaType>(entry.type), entry.link_state_id,
                         entry.advertising_router};
    wanted_ids_.erase(id);
    outstanding_.emplace(id, entry);
    lsr.entries.push_back(entry);
  }
  counters_.ls_requests_sent += lsr.entries.size();
  ++counters_.lsrs_sent;
  send_packet_(Packet{self_id_, 0, std::move(lsr)});
}

void NeighborSession::send_update_batches_(const std::vector<const WireLsa*>& lsas) {
  LsUpdateBody batch;
  std::size_t batch_bytes = 0;
  const auto flush = [&] {
    if (batch.lsas.empty()) return;
    counters_.lsas_sent += batch.lsas.size();
    ++counters_.lsus_sent;
    send_packet_(Packet{self_id_, 0, std::move(batch)});
    batch = LsUpdateBody{};
    batch_bytes = 0;
  };
  for (const WireLsa* lsa : lsas) {
    // The wire length field is 16 bits; flush before a batch could ever
    // approach it. A single oversized LSA still travels alone.
    if (!batch.lsas.empty() &&
        batch_bytes + lsa->header.length > config_.max_update_bytes) {
      flush();
    }
    batch.lsas.push_back(*lsa);
    batch_bytes += lsa->header.length;
  }
  flush();
}

void NeighborSession::process_lsr_(const LsRequestBody& lsr) {
  if (state_ < NeighborState::kExchange) return;
  std::vector<const WireLsa*> response;
  for (const LsRequestEntry& entry : lsr.entries) {
    const LsaIdentity id{static_cast<WireLsaType>(entry.type), entry.link_state_id,
                         entry.advertising_router};
    const WireLsa* mine = db_.lookup(id);
    if (mine == nullptr) {
      // RFC 10.7 BadLSReq. A truthful summary makes this unreachable in the
      // simulator; tolerate it rather than tearing the adjacency down.
      FIB_LOG(kWarn, "proto") << self_id_ << ": LS request from " << peer_id_
                              << " for an instance we do not hold";
      continue;
    }
    response.push_back(mine);
  }
  send_update_batches_(response);
}

void NeighborSession::process_lsu_(const LsUpdateBody& lsu) {
  if (state_ < NeighborState::kExchange) return;
  LsAckBody ack;
  LsUpdateBody newer_back;  // RFC 13(8): answer stale instances with ours
  for (const WireLsa& lsa : lsu.lsas) {
    const LsaIdentity id = identity_of(lsa.header);
    // Implied acknowledgment: an equal-or-newer instance from the peer
    // proves it holds what we flooded.
    if (const auto it = rxmt_.find(id);
        it != rxmt_.end() && compare_instances(lsa.header, it->second.header) >= 0) {
      rxmt_.erase(it);
    }
    switch (db_.deliver(lsa, peer_id_)) {
      case DatabaseFacade::DeliverResult::kNewer:
      case DatabaseFacade::DeliverResult::kDuplicate:
        ack.headers.push_back(lsa.header);
        break;
      case DatabaseFacade::DeliverResult::kStale:
        if (const WireLsa* mine = db_.lookup(id)) newer_back.lsas.push_back(*mine);
        break;
    }
    // Loading bookkeeping: however the instance got here (response or
    // concurrent flood), it is no longer wanted.
    if (wanted_ids_.erase(id) > 0) {
      std::erase_if(wanted_, [&](const LsRequestEntry& e) {
        return e.link_state_id == id.link_state_id &&
               e.advertising_router == id.advertising_router &&
               static_cast<WireLsaType>(e.type) == id.type;
      });
    }
    outstanding_.erase(id);
  }
  if (rxmt_.empty()) {
    events_.cancel(rxmt_timer_);
    rxmt_timer_ = {};
  }
  if (!ack.headers.empty()) {
    ++counters_.lsacks_sent;
    send_packet_(Packet{self_id_, 0, std::move(ack)});
  }
  if (!newer_back.lsas.empty()) {
    std::vector<const WireLsa*> ours;
    ours.reserve(newer_back.lsas.size());
    for (const WireLsa& lsa : newer_back.lsas) ours.push_back(&lsa);
    send_update_batches_(ours);
  }
  if (state_ == NeighborState::kLoading && outstanding_.empty()) {
    send_next_requests_();
  }
}

void NeighborSession::process_lsack_(const LsAckBody& ack) {
  if (state_ < NeighborState::kExchange) return;
  for (const LsaHeader& header : ack.headers) {
    const auto it = rxmt_.find(identity_of(header));
    if (it == rxmt_.end()) continue;
    if (compare_instances(header, it->second.header) >= 0) rxmt_.erase(it);
  }
  if (rxmt_.empty()) {
    events_.cancel(rxmt_timer_);
    rxmt_timer_ = {};
  }
}

Buffer NeighborSession::encode_flood(std::uint32_t router_id, const WireLsa& lsa) {
  LsUpdateBody lsu;
  lsu.lsas.push_back(lsa);
  return encode_packet(Packet{router_id, 0, std::move(lsu)});
}

void NeighborSession::flood(const WireLsa& lsa) {
  if (state_ < NeighborState::kExchange) return;  // DD snapshot covers it
  flood_encoded(lsa,
                std::make_shared<const Buffer>(encode_flood(self_id_, lsa)));
}

void NeighborSession::flood_encoded(const WireLsa& lsa, const BufferPtr& encoded) {
  if (state_ < NeighborState::kExchange) return;  // DD snapshot covers it
  rxmt_[identity_of(lsa.header)] = lsa;
  ++counters_.lsus_sent;
  ++counters_.lsas_sent;
  ++counters_.packets_sent;
  counters_.bytes_sent += encoded->size();
  send_(encoded);
  schedule_rxmt_();
}

void NeighborSession::schedule_rxmt_() {
  if (rxmt_timer_.valid()) return;
  rxmt_timer_ = events_.schedule_in(config_.rxmt_interval_s, [this] {
    rxmt_timer_ = {};
    on_rxmt_timer_();
  });
}

void NeighborSession::on_rxmt_timer_() {
  if (state_ < NeighborState::kExchange || rxmt_.empty()) return;
  std::vector<const WireLsa*> unacked;
  unacked.reserve(rxmt_.size());
  for (const auto& [id, lsa] : rxmt_) unacked.push_back(&lsa);
  counters_.retransmissions += unacked.size();
  send_update_batches_(unacked);
  schedule_rxmt_();
}

}  // namespace fibbing::proto
