#include "proto/controller_session.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace fibbing::proto {

ControllerSession::ControllerSession(const AddressMap& addrs, SendFn send)
    : addrs_(addrs), send_(std::move(send)) {
  FIB_ASSERT(send_ != nullptr, "ControllerSession: transport not wired");
}

void ControllerSession::send_update_(const igp::ExternalLsa& ext, igp::SeqNum seq) {
  const WireLsa wire = to_wire(igp::make_external_lsa(ext, seq), addrs_);
  unacked_[identity_of(wire.header)] = wire.header;
  LsUpdateBody lsu;
  lsu.lsas.push_back(wire);
  const Buffer bytes =
      encode_packet(Packet{kControllerRouterId, 0, std::move(lsu)});
  ++counters_.packets_sent;
  ++counters_.lsus_sent;
  ++counters_.lsas_sent;
  counters_.bytes_sent += bytes.size();
  send_(std::make_shared<const Buffer>(bytes));
}

void ControllerSession::inject(const igp::ExternalLsa& ext) {
  FIB_ASSERT(!ext.withdrawn, "ControllerSession::inject: use retract()");
  const igp::SeqNum seq = ++lie_seq_[ext.lie_id];
  last_[ext.lie_id] = ext;
  send_update_(ext, seq);
}

void ControllerSession::retract(std::uint64_t lie_id) {
  const auto it = last_.find(lie_id);
  FIB_ASSERT(it != last_.end(), "ControllerSession::retract: unknown lie id");
  igp::ExternalLsa tombstone = it->second;
  tombstone.withdrawn = true;
  send_update_(tombstone, ++lie_seq_[lie_id]);
}

void ControllerSession::receive(const BufferPtr& buffer) {
  Decoded<Packet> decoded = decode_packet(*buffer);
  if (!decoded) {
    FIB_LOG(kWarn, "proto") << "controller session: undecodable packet ("
                            << to_string(decoded.error().kind) << ": "
                            << decoded.error().detail << ")";
    return;
  }
  const auto* ack = std::get_if<LsAckBody>(&decoded.value().body);
  if (ack == nullptr) return;  // the session router only acks us back
  for (const LsaHeader& header : ack->headers) {
    const auto it = unacked_.find(identity_of(header));
    if (it == unacked_.end()) continue;
    if (compare_instances(header, it->second) >= 0) {
      unacked_.erase(it);
      ++counters_.acks_received;
    }
  }
}

}  // namespace fibbing::proto
