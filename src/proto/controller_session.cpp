#include "proto/controller_session.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace fibbing::proto {

ControllerSession::ControllerSession(const AddressMap& addrs, SendFn send)
    : addrs_(addrs), send_(std::move(send)) {
  FIB_ASSERT(send_ != nullptr, "ControllerSession: transport not wired");
}

void ControllerSession::send_update_(const igp::ExternalLsa& ext, igp::SeqNum seq) {
  const WireLsa wire = to_wire(igp::make_external_lsa(ext, seq), addrs_);
  unacked_[identity_of(wire.header)] = wire.header;
  LsUpdateBody lsu;
  lsu.lsas.push_back(wire);
  const Buffer bytes =
      encode_packet(Packet{kControllerRouterId, 0, std::move(lsu)});
  ++counters_.packets_sent;
  ++counters_.lsus_sent;
  ++counters_.lsas_sent;
  counters_.bytes_sent += bytes.size();
  send_(std::make_shared<const Buffer>(bytes));
}

util::Status ControllerSession::inject(const igp::ExternalLsa& ext) {
  FIB_ASSERT(!ext.withdrawn, "ControllerSession::inject: use retract()");
  const std::uint32_t wire_id = external_ls_id(ext.prefix, ext.lie_id);
  const auto owner = wire_id_owner_.find(wire_id);
  if (owner != wire_id_owner_.end() && owner->second != ext.lie_id) {
    const igp::ExternalLsa& standing = last_.at(owner->second);
    if (!standing.withdrawn) {
      // Same host bits, different lie: on the wire the two are one LSA and
      // the fresher instance silently replaces the other in every LSDB.
      // Refuse before anything is flooded.
      ++counters_.alias_rejections;
      return util::Status::failure(
          "lie " + std::to_string(ext.lie_id) + " aliases live lie " +
          std::to_string(owner->second) + " at wire identity: ids collide "
          "modulo 2^(32-len) for " + ext.prefix.to_string() +
          " (appendix-E host bits)");
    }
    // Only a tombstone stands at this identity. Taking it over is safe, but
    // the newcomer's instances must outrank the tombstone's, so its
    // sequence space continues where the retracted lie's stopped.
    lie_seq_[ext.lie_id] =
        std::max(lie_seq_[ext.lie_id], lie_seq_.at(owner->second));
  }
  wire_id_owner_[wire_id] = ext.lie_id;
  const igp::SeqNum seq = ++lie_seq_[ext.lie_id];
  last_[ext.lie_id] = ext;
  send_update_(ext, seq);
  return {};
}

util::Status ControllerSession::retract(std::uint64_t lie_id) {
  const auto it = last_.find(lie_id);
  if (it == last_.end()) {
    return util::Status::failure("retract: lie " + std::to_string(lie_id) +
                                 " was never announced");
  }
  if (it->second.withdrawn) {
    return util::Status::failure("retract: lie " + std::to_string(lie_id) +
                                 " is already retracted");
  }
  it->second.withdrawn = true;
  send_update_(it->second, ++lie_seq_[lie_id]);
  return {};
}

void ControllerSession::receive(const BufferPtr& buffer) {
  Decoded<Packet> decoded = decode_packet(*buffer);
  if (!decoded) {
    FIB_LOG(kWarn, "proto") << "controller session: undecodable packet ("
                            << to_string(decoded.error().kind) << ": "
                            << decoded.error().detail << ")";
    return;
  }
  if (const auto* lsu = std::get_if<LsUpdateBody>(&decoded.value().body)) {
    // The session router echoes controller-originated externals it installs
    // from *real* neighbors (RFC 13.4 on our behalf: routers cannot refresh
    // our LSAs, so the self-originated-LSA decision comes back here).
    for (const WireLsa& lsa : lsu->lsas) {
      if (lsa.header.type != WireLsaType::kExternal) continue;
      if (lsa.header.advertising_router != kControllerRouterId) continue;
      const auto* body = std::get_if<ExternalLsaBody>(&lsa.body);
      if (body == nullptr) continue;
      const auto it = last_.find(body->route_tag);
      if (it == last_.end()) continue;  // not a lie we remember
      if (!it->second.withdrawn || lsa.header.age == kMaxAge) continue;
      // A lie we retracted is circulating live again: its tombstone was
      // flushed (RFC 14) and a healed partition resurrected the stale
      // announcement. Re-issue the tombstone above both the resurrected
      // instance and everything we ever sent.
      auto& seq = lie_seq_.at(body->route_tag);
      seq = std::max(seq, from_wire_seq(lsa.header.seq));
      ++counters_.reflushes;
      FIB_LOG(kInfo, "proto")
          << "controller session: retracted lie " << body->route_tag
          << " resurrected by the domain; re-flushing";
      send_update_(it->second, ++seq);
    }
    return;
  }
  const auto* ack = std::get_if<LsAckBody>(&decoded.value().body);
  if (ack == nullptr) return;
  for (const LsaHeader& header : ack->headers) {
    const auto it = unacked_.find(identity_of(header));
    if (it == unacked_.end()) continue;
    if (compare_instances(header, it->second) >= 0) {
      unacked_.erase(it);
      ++counters_.acks_received;
    }
  }
}

}  // namespace fibbing::proto
