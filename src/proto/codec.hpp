#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "proto/wire.hpp"

namespace fibbing::proto {

/// RFC 2328 packet and LSA wire formats: the exact byte layouts a real OSPFv2
/// speaker puts on the network (appendix A), with both checksum layers (the
/// IP-style packet checksum of D.4.1 and the Fletcher LSA checksum of
/// RFC 905 Annex B), the LS-sequence-number comparison rules of section 13.1
/// and the MaxAge / premature-aging semantics of section 14.1 that carry
/// Fibbing's lie retractions.
///
/// The structs here are *wire-level*: router ids and addresses are raw
/// 32-bit values, sequence numbers are the RFC's signed 32-bit space.
/// proto/translate.hpp maps them to and from the simulator's in-memory
/// igp::Lsa model.

inline constexpr std::uint8_t kOspfVersion = 2;
/// RFC 2328 B: MaxAge. An instance at MaxAge is being flushed ("premature
/// aging"); its content no longer contributes routes.
inline constexpr std::uint16_t kMaxAge = 3600;
/// RFC 2328 B: MaxAgeDiff. Two instances with equal sequence number and
/// checksum whose ages differ by more than this are considered different
/// (the younger wins); within it they are the same instance.
inline constexpr std::uint16_t kMaxAgeDiff = 900;
/// RFC 2328 B: InfTransDelay analogue -- every hop an LSA travels adds this
/// to its age (clamped at MaxAge), so age reflects propagation distance.
inline constexpr std::uint16_t kInfTransDelay = 1;
/// RFC 2328 B: InitialSequenceNumber (signed 0x80000001).
inline constexpr std::int32_t kInitialSequence =
    static_cast<std::int32_t>(0x80000001u);
/// Options octet with only the E (external-capable) bit set.
inline constexpr std::uint8_t kOptionsExternal = 0x02;

inline constexpr std::size_t kPacketHeaderBytes = 24;
inline constexpr std::size_t kLsaHeaderBytes = 20;

enum class PacketType : std::uint8_t {
  kHello = 1,
  kDatabaseDescription = 2,
  kLsRequest = 3,
  kLsUpdate = 4,
  kLsAck = 5,
};

enum class WireLsaType : std::uint8_t {
  kRouter = 1,
  kExternal = 5,
};

[[nodiscard]] const char* to_string(PacketType type);

// --------------------------------------------------------------------- LSAs

/// A.4.1 -- the 20-byte header every LSA starts with; also the unit DD
/// summaries and LS Acks carry.
struct LsaHeader {
  std::uint16_t age = 0;
  std::uint8_t options = kOptionsExternal;
  WireLsaType type = WireLsaType::kRouter;
  std::uint32_t link_state_id = 0;
  std::uint32_t advertising_router = 0;
  std::int32_t seq = kInitialSequence;
  std::uint16_t checksum = 0;
  std::uint16_t length = 0;  ///< header + body, bytes

  friend bool operator==(const LsaHeader&, const LsaHeader&) = default;
};

/// Identity of an LSA in the distributed database (RFC 2328 12.1): which
/// LSA, as opposed to which *instance* (seq/checksum/age decide that).
struct LsaIdentity {
  WireLsaType type = WireLsaType::kRouter;
  std::uint32_t link_state_id = 0;
  std::uint32_t advertising_router = 0;

  friend auto operator<=>(const LsaIdentity&, const LsaIdentity&) = default;
};
[[nodiscard]] inline LsaIdentity identity_of(const LsaHeader& h) {
  return LsaIdentity{h.type, h.link_state_id, h.advertising_router};
}

/// A.4.2 link types (we emit point-to-point adjacencies and stub networks).
enum class RouterLinkType : std::uint8_t {
  kPointToPoint = 1,
  kTransit = 2,
  kStub = 3,
  kVirtual = 4,
};

struct RouterLink {
  std::uint32_t link_id = 0;    ///< neighbor router id / stub network
  std::uint32_t link_data = 0;  ///< local interface address / stub netmask
  RouterLinkType type = RouterLinkType::kPointToPoint;
  std::uint8_t tos_count = 0;
  std::uint16_t metric = 1;

  friend bool operator==(const RouterLink&, const RouterLink&) = default;
};

/// A.4.2 Router-LSA body.
struct RouterLsaBody {
  std::uint8_t flags = 0;  ///< V/E/B bits; unused by the simulator
  std::vector<RouterLink> links;

  friend bool operator==(const RouterLsaBody&, const RouterLsaBody&) = default;
};

/// A.4.5 AS-external-LSA body, single TOS-0 route. The route tag carries the
/// controller's lie id (see proto/translate.hpp).
struct ExternalLsaBody {
  std::uint32_t network_mask = 0;
  bool type2_metric = true;  ///< E bit of the metric word
  std::uint32_t metric = 0;  ///< 24 bits on the wire
  std::uint32_t forwarding_address = 0;
  std::uint32_t route_tag = 0;

  friend bool operator==(const ExternalLsaBody&, const ExternalLsaBody&) = default;
};

struct WireLsa {
  LsaHeader header;
  std::variant<RouterLsaBody, ExternalLsaBody> body;

  friend bool operator==(const WireLsa&, const WireLsa&) = default;
};

// ------------------------------------------------------------- packet bodies

/// A.3.2. On the simulator's point-to-point adjacencies the mask is 0 and
/// DR/BDR are unused (always 0), exactly as RFC 2328 prescribes for p2p.
struct HelloBody {
  std::uint32_t network_mask = 0;
  std::uint16_t hello_interval = 10;
  std::uint8_t options = kOptionsExternal;
  std::uint8_t priority = 1;
  std::uint32_t dead_interval = 40;
  std::uint32_t designated_router = 0;
  std::uint32_t backup_designated_router = 0;
  std::vector<std::uint32_t> neighbors;  ///< router ids heard on this link

  friend bool operator==(const HelloBody&, const HelloBody&) = default;
};

inline constexpr std::uint8_t kDdFlagMasterSlave = 0x01;  ///< MS
inline constexpr std::uint8_t kDdFlagMore = 0x02;         ///< M
inline constexpr std::uint8_t kDdFlagInit = 0x04;         ///< I

/// A.3.3 Database Description: a page of LSA header *summaries*.
struct DatabaseDescriptionBody {
  std::uint16_t interface_mtu = 1500;
  std::uint8_t options = kOptionsExternal;
  std::uint8_t flags = 0;  ///< I | M | MS
  std::uint32_t dd_sequence = 0;
  std::vector<LsaHeader> headers;

  friend bool operator==(const DatabaseDescriptionBody&,
                         const DatabaseDescriptionBody&) = default;
};

/// A.3.4 Link State Request.
struct LsRequestEntry {
  std::uint32_t type = 0;  ///< full 32-bit LS type field
  std::uint32_t link_state_id = 0;
  std::uint32_t advertising_router = 0;

  friend bool operator==(const LsRequestEntry&, const LsRequestEntry&) = default;
};
struct LsRequestBody {
  std::vector<LsRequestEntry> entries;

  friend bool operator==(const LsRequestBody&, const LsRequestBody&) = default;
};

/// A.3.5 Link State Update: full LSA instances.
struct LsUpdateBody {
  std::vector<WireLsa> lsas;

  friend bool operator==(const LsUpdateBody&, const LsUpdateBody&) = default;
};

/// A.3.6 Link State Acknowledgment: LSA headers being acked.
struct LsAckBody {
  std::vector<LsaHeader> headers;

  friend bool operator==(const LsAckBody&, const LsAckBody&) = default;
};

/// One OSPF packet. The 24-byte header's version/type/length/checksum fields
/// are derived during encoding; router and area ids are carried here.
struct Packet {
  std::uint32_t router_id = 0;  ///< sender
  std::uint32_t area_id = 0;
  std::variant<HelloBody, DatabaseDescriptionBody, LsRequestBody, LsUpdateBody,
               LsAckBody>
      body;

  friend bool operator==(const Packet&, const Packet&) = default;
};

[[nodiscard]] PacketType type_of(const Packet& packet);

// ------------------------------------------------------------------ encoding

/// Serialize to network-order bytes, filling both length fields and both
/// checksum layers (packet checksum per D.4.1; each LSA in an LS Update
/// carries the Fletcher checksum of its `header.checksum` field, which
/// encode preserves as given -- finalize_lsa computes it at origination).
[[nodiscard]] Buffer encode_packet(const Packet& packet);

/// Parse a received buffer. Verifies version, type codes, every length field
/// against the bytes actually present, the packet checksum, and the Fletcher
/// checksum of every full LSA carried in an LS Update. Never crashes on
/// malformed input; the error reports which contract the buffer broke.
[[nodiscard]] Decoded<Packet> decode_packet(const std::uint8_t* data,
                                            std::size_t size);
[[nodiscard]] inline Decoded<Packet> decode_packet(const Buffer& buffer) {
  return decode_packet(buffer.data(), buffer.size());
}

/// Serialize one LSA (header + body) -- the representation flooded inside
/// LS Updates and the input to the Fletcher checksum.
[[nodiscard]] Buffer encode_lsa(const WireLsa& lsa);

/// Fill in `header.length` and `header.checksum` (Fletcher over the encoded
/// LSA minus the age field, per RFC 2328 12.1.7). Call once at origination;
/// the instance then floods byte-identical everywhere.
[[nodiscard]] WireLsa finalize_lsa(WireLsa lsa);

/// Verify the Fletcher checksum of a received instance.
[[nodiscard]] bool lsa_checksum_ok(const WireLsa& lsa);

/// RFC 905 Annex B Fletcher checksum with the check bytes at
/// `checksum_offset` within `data` (the LSA layout passes the bytes after
/// the age field with offset 14).
[[nodiscard]] std::uint16_t fletcher_checksum(const std::uint8_t* data,
                                              std::size_t size,
                                              std::size_t checksum_offset);

// --------------------------------------------------- instance ordering rules

/// RFC 2328 13.1: which instance is newer. Returns >0 when `a` is newer than
/// `b`, <0 when older, 0 when they are the same instance. Sequence number
/// (signed) decides first, then checksum, then MaxAge (an instance at MaxAge
/// is considered newer, so flushes win).
[[nodiscard]] int compare_instances(const LsaHeader& a, const LsaHeader& b);

}  // namespace fibbing::proto
