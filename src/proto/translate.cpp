#include "proto/translate.hpp"

#include <string>

#include "net/prefix.hpp"
#include "util/assert.hpp"

namespace fibbing::proto {

namespace {

DecodeError bad(DecodeErrorKind kind, std::string detail) {
  return DecodeError{kind, std::move(detail)};
}

std::optional<std::uint8_t> prefix_length_of(std::uint32_t mask) {
  for (std::uint8_t len = 0; len <= 32; ++len) {
    if (net::mask_for(len) == mask) return len;
  }
  return std::nullopt;  // non-contiguous mask
}

std::uint16_t wire_metric(topo::Metric metric) {
  FIB_ASSERT(metric <= 0xffff, "to_wire: link metric exceeds 16 bits");
  return static_cast<std::uint16_t>(metric);
}

}  // namespace

std::uint32_t external_ls_id(const net::Prefix& prefix, std::uint64_t lie_id) {
  // Appendix E: concurrent instances for one prefix are told apart by the
  // host bits of the link state id. The lie id also rides in full in the
  // route tag, so decoding is exact as long as coexisting lies for a prefix
  // do not collide modulo 2^(32-len). Colliding lies share a wire identity
  // and would silently supersede each other; the compiler and the
  // controller session both check the bound before anything hits the wire.
  const std::uint32_t host_bits = ~net::mask_for(prefix.length());
  return prefix.network().bits() |
         (static_cast<std::uint32_t>(lie_id) & host_bits);
}

std::uint64_t max_coexisting_lies(const net::Prefix& prefix) {
  return 1ull << (32 - prefix.length());
}

AddressMap::AddressMap(const topo::Topology& topo) {
  id_of_.reserve(topo.node_count());
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    const std::uint32_t id = topo.node(n).router_id.bits();
    id_of_.push_back(id);
    const auto [it, inserted] = node_of_.emplace(id, n);
    FIB_ASSERT(inserted, "AddressMap: duplicate router id");
  }
}

std::uint32_t AddressMap::router_id(topo::NodeId node) const {
  FIB_ASSERT(node < id_of_.size(), "AddressMap: node out of range");
  return id_of_[node];
}

std::optional<topo::NodeId> AddressMap::node_of(std::uint32_t router_id) const {
  const auto it = node_of_.find(router_id);
  if (it == node_of_.end()) return std::nullopt;
  return it->second;
}

std::int32_t to_wire_seq(igp::SeqNum seq) {
  FIB_ASSERT(seq >= 1 && seq <= 0x7ffffffeull, "to_wire_seq: out of LS range");
  return static_cast<std::int32_t>(static_cast<std::int64_t>(kInitialSequence) +
                                   static_cast<std::int64_t>(seq) - 1);
}

igp::SeqNum from_wire_seq(std::int32_t seq) {
  return static_cast<igp::SeqNum>(static_cast<std::int64_t>(seq) -
                                  static_cast<std::int64_t>(kInitialSequence) + 1);
}

WireLsa to_wire(const igp::Lsa& lsa, const AddressMap& addrs) {
  WireLsa wire;
  wire.header.seq = to_wire_seq(lsa.seq);
  if (const auto* router = std::get_if<igp::RouterLsa>(&lsa.body)) {
    FIB_ASSERT(lsa.id.type == igp::LsaType::kRouter && lsa.id.key == router->origin,
               "to_wire: router LSA key mismatch");
    const std::uint32_t rid = addrs.router_id(router->origin);
    wire.header.type = WireLsaType::kRouter;
    wire.header.link_state_id = rid;
    wire.header.advertising_router = rid;
    RouterLsaBody body;
    body.links.reserve(2 * router->links.size() + router->prefixes.size());
    for (const igp::LsaLink& link : router->links) {
      // RFC 12.4.1.1: the point-to-point link, then the stub link for its
      // transfer network (which is how forwarding addresses stay
      // resolvable from the LSDB alone).
      body.links.push_back(RouterLink{addrs.router_id(link.neighbor),
                                      link.local_addr.bits(),
                                      RouterLinkType::kPointToPoint, 0,
                                      wire_metric(link.metric)});
      body.links.push_back(RouterLink{link.subnet.network().bits(),
                                      net::mask_for(link.subnet.length()),
                                      RouterLinkType::kStub, 0,
                                      wire_metric(link.metric)});
    }
    for (const igp::LsaPrefix& pfx : router->prefixes) {
      body.links.push_back(RouterLink{pfx.prefix.network().bits(),
                                      net::mask_for(pfx.prefix.length()),
                                      RouterLinkType::kStub, 0,
                                      wire_metric(pfx.metric)});
    }
    wire.body = std::move(body);
  } else {
    const auto& ext = std::get<igp::ExternalLsa>(lsa.body);
    FIB_ASSERT(lsa.id.type == igp::LsaType::kExternal && lsa.id.key == ext.lie_id,
               "to_wire: external LSA key mismatch");
    FIB_ASSERT(ext.lie_id <= 0xffffffffull, "to_wire: lie id exceeds 32 bits");
    FIB_ASSERT(ext.ext_metric <= 0xffffff, "to_wire: external metric exceeds 24 bits");
    wire.header.type = WireLsaType::kExternal;
    wire.header.link_state_id = external_ls_id(ext.prefix, ext.lie_id);
    wire.header.advertising_router = kControllerRouterId;
    wire.header.age = ext.withdrawn ? kMaxAge : 0;
    wire.body = ExternalLsaBody{net::mask_for(ext.prefix.length()),
                                /*type2_metric=*/true, ext.ext_metric,
                                ext.forwarding_address.bits(),
                                static_cast<std::uint32_t>(ext.lie_id)};
  }
  return finalize_lsa(std::move(wire));
}

Decoded<igp::Lsa> from_wire(const WireLsa& wire, const AddressMap& addrs) {
  igp::Lsa lsa;
  lsa.seq = from_wire_seq(wire.header.seq);
  if (const auto* router = std::get_if<RouterLsaBody>(&wire.body)) {
    if (wire.header.link_state_id != wire.header.advertising_router) {
      return bad(DecodeErrorKind::kBadValue, "router LSA id != originator");
    }
    const auto origin = addrs.node_of(wire.header.advertising_router);
    if (!origin) {
      return bad(DecodeErrorKind::kBadValue, "unknown originating router");
    }
    igp::RouterLsa body;
    body.origin = *origin;
    for (std::size_t i = 0; i < router->links.size(); ++i) {
      const RouterLink& link = router->links[i];
      switch (link.type) {
        case RouterLinkType::kPointToPoint: {
          const auto neighbor = addrs.node_of(link.link_id);
          if (!neighbor) {
            return bad(DecodeErrorKind::kBadValue, "unknown neighbor router");
          }
          // The transfer network rides in the stub link that follows.
          if (i + 1 >= router->links.size() ||
              router->links[i + 1].type != RouterLinkType::kStub) {
            return bad(DecodeErrorKind::kBadValue,
                       "p2p link without its transfer-network stub");
          }
          const RouterLink& stub = router->links[++i];
          const auto len = prefix_length_of(stub.link_data);
          if (!len) return bad(DecodeErrorKind::kBadValue, "non-contiguous mask");
          const net::Prefix subnet(net::Ipv4(stub.link_id), *len);
          if (!subnet.contains(net::Ipv4(link.link_data))) {
            return bad(DecodeErrorKind::kBadValue,
                       "interface address outside its transfer network");
          }
          body.links.push_back(igp::LsaLink{*neighbor, link.metric, subnet,
                                            net::Ipv4(link.link_data)});
          break;
        }
        case RouterLinkType::kStub: {
          const auto len = prefix_length_of(link.link_data);
          if (!len) return bad(DecodeErrorKind::kBadValue, "non-contiguous mask");
          body.prefixes.push_back(igp::LsaPrefix{
              net::Prefix(net::Ipv4(link.link_id), *len), link.metric});
          break;
        }
        case RouterLinkType::kTransit:
        case RouterLinkType::kVirtual:
          return bad(DecodeErrorKind::kBadValue,
                     "transit/virtual links unsupported on p2p domains");
      }
    }
    lsa.id = igp::LsaKey{igp::LsaType::kRouter, body.origin};
    lsa.body = std::move(body);
  } else {
    const auto& ext = std::get<ExternalLsaBody>(wire.body);
    if (wire.header.advertising_router != kControllerRouterId) {
      return bad(DecodeErrorKind::kBadValue, "external LSA from unknown ASBR");
    }
    const auto len = prefix_length_of(ext.network_mask);
    if (!len) return bad(DecodeErrorKind::kBadValue, "non-contiguous mask");
    igp::ExternalLsa body;
    body.lie_id = ext.route_tag;
    body.prefix = net::Prefix(net::Ipv4(wire.header.link_state_id), *len);
    body.ext_metric = ext.metric;
    body.forwarding_address = net::Ipv4(ext.forwarding_address);
    body.withdrawn = wire.header.age == kMaxAge;
    if (wire.header.link_state_id != external_ls_id(body.prefix, body.lie_id)) {
      return bad(DecodeErrorKind::kBadValue,
                 "external LSA host bits disagree with route tag");
    }
    lsa.id = igp::LsaKey{igp::LsaType::kExternal, body.lie_id};
    lsa.body = body;
  }
  return lsa;
}

LsaIdentity wire_identity(const igp::Lsa& lsa, const AddressMap& addrs) {
  if (const auto* router = std::get_if<igp::RouterLsa>(&lsa.body)) {
    const std::uint32_t rid = addrs.router_id(router->origin);
    return LsaIdentity{WireLsaType::kRouter, rid, rid};
  }
  const auto& ext = std::get<igp::ExternalLsa>(lsa.body);
  return LsaIdentity{WireLsaType::kExternal, external_ls_id(ext.prefix, ext.lie_id),
                     kControllerRouterId};
}

}  // namespace fibbing::proto
