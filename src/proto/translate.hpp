#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "igp/lsa.hpp"
#include "net/prefix.hpp"
#include "proto/codec.hpp"
#include "topo/topology.hpp"

namespace fibbing::proto {

/// Router id the controller's IGP session advertises (192.168.255.254 --
/// outside the 192.168.0.0/24 loopback block Topology allocates to nodes).
inline constexpr std::uint32_t kControllerRouterId = 0xc0a8fffeu;

/// Bidirectional mapping between the simulator's dense NodeIds and the
/// 32-bit OSPF router ids that appear on the wire (Topology assigns each
/// node a loopback router id at construction). Shared by every router of a
/// domain; decoding a Router-LSA needs it to resolve neighbor references.
class AddressMap {
 public:
  explicit AddressMap(const topo::Topology& topo);

  [[nodiscard]] std::uint32_t router_id(topo::NodeId node) const;
  [[nodiscard]] std::optional<topo::NodeId> node_of(std::uint32_t router_id) const;
  [[nodiscard]] std::size_t node_count() const { return id_of_.size(); }

 private:
  std::vector<std::uint32_t> id_of_;
  std::unordered_map<std::uint32_t, topo::NodeId> node_of_;
};

/// igp::SeqNum (1-based, unbounded) <-> the RFC's signed 32-bit LS sequence
/// space starting at InitialSequenceNumber. The simulator never wraps (that
/// would take 2^31 re-originations of one LSA), so the mapping is exact.
[[nodiscard]] std::int32_t to_wire_seq(igp::SeqNum seq);
[[nodiscard]] igp::SeqNum from_wire_seq(std::int32_t seq);

/// Encode an in-memory LSA as its RFC 2328 wire form, finalized (length and
/// Fletcher checksum filled). Mapping:
///  - Router-LSA: each adjacency becomes a point-to-point link (link id =
///    neighbor router id, link data = local interface address) immediately
///    followed by the stub link for its /30 transfer network (RFC 12.4.1.1);
///    attached prefixes become standalone stub links.
///  - External-LSA: link state id = prefix network with the lie id in the
///    host bits (appendix E disambiguation of concurrent lies for one
///    prefix), advertising router = the controller, type-2 metric, and the
///    route tag carries the lie id. `withdrawn` maps to age = MaxAge
///    (premature aging, RFC 14.1): the flush that retracts a lie.
/// Asserts on values the wire cannot carry (metric over 24 bits, lie id
/// over 32) -- those are internal-invariant violations, not input errors.
[[nodiscard]] WireLsa to_wire(const igp::Lsa& lsa, const AddressMap& addrs);

/// Decode a verified wire LSA back into the in-memory model. Fails typed on
/// references the map cannot resolve or masks that are not proper prefixes.
[[nodiscard]] Decoded<igp::Lsa> from_wire(const WireLsa& lsa,
                                          const AddressMap& addrs);

/// The database identity a wire instance of `lsa` carries (what DD
/// summaries, LS requests and acks are keyed on).
[[nodiscard]] LsaIdentity wire_identity(const igp::Lsa& lsa,
                                        const AddressMap& addrs);

/// The link state id an External-LSA for (prefix, lie_id) carries on the
/// wire: the prefix network with the lie id in the host bits (appendix E).
/// Two lies whose ids collide modulo 2^(32-len) share a wire identity --
/// coexisting they would silently alias (one supersedes the other in every
/// LSDB). Exposed so the lie compiler and the controller session can check
/// for collisions before anything is flooded.
[[nodiscard]] std::uint32_t external_ls_id(const net::Prefix& prefix,
                                           std::uint64_t lie_id);

/// How many lies for `prefix` can coexist before wire identities must
/// collide: 2^(32 - prefix length).
[[nodiscard]] std::uint64_t max_coexisting_lies(const net::Prefix& prefix);

}  // namespace fibbing::proto
