#include "proto/codec.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace fibbing::proto {

namespace {

DecodeError err(DecodeErrorKind kind, std::string detail) {
  return DecodeError{kind, std::move(detail)};
}

// ---------------------------------------------------------- checksum helpers

/// RFC 1071 ones'-complement sum over [begin, end), skipping [skip_begin,
/// skip_end) -- the authentication field is excluded from the packet
/// checksum (RFC 2328 D.4.1).
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t size,
                                std::size_t skip_begin, std::size_t skip_end,
                                std::size_t zero_begin, std::size_t zero_end) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < size; i += 2) {
    const auto byte_at = [&](std::size_t pos) -> std::uint32_t {
      if (pos >= size) return 0;  // odd length: virtual zero pad
      if (pos >= skip_begin && pos < skip_end) return 0;
      if (pos >= zero_begin && pos < zero_end) return 0;
      return data[pos];
    };
    if (i >= skip_begin && i < skip_end) continue;
    sum += (byte_at(i) << 8) | byte_at(i + 1);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

// ------------------------------------------------------------- LSA encoding

void write_lsa_header(Writer& w, const LsaHeader& h) {
  w.u16(h.age);
  w.u8(h.options);
  w.u8(static_cast<std::uint8_t>(h.type));
  w.u32(h.link_state_id);
  w.u32(h.advertising_router);
  w.u32(static_cast<std::uint32_t>(h.seq));
  w.u16(h.checksum);
  w.u16(h.length);
}

void write_lsa_body(Writer& w, const WireLsa& lsa) {
  if (const auto* router = std::get_if<RouterLsaBody>(&lsa.body)) {
    w.u8(router->flags);
    w.u8(0);
    FIB_ASSERT(router->links.size() <= 0xffff, "router LSA: too many links");
    w.u16(static_cast<std::uint16_t>(router->links.size()));
    for (const RouterLink& link : router->links) {
      w.u32(link.link_id);
      w.u32(link.link_data);
      w.u8(static_cast<std::uint8_t>(link.type));
      w.u8(link.tos_count);
      w.u16(link.metric);
    }
  } else {
    const auto& ext = std::get<ExternalLsaBody>(lsa.body);
    FIB_ASSERT(ext.metric <= 0xffffff, "external LSA: metric exceeds 24 bits");
    w.u32(ext.network_mask);
    w.u32((ext.type2_metric ? 0x80000000u : 0u) | ext.metric);
    w.u32(ext.forwarding_address);
    w.u32(ext.route_tag);
  }
}

Decoded<LsaHeader> read_lsa_header(Reader& r) {
  LsaHeader h;
  std::uint8_t type = 0;
  std::uint32_t seq = 0;
  if (!r.u16(h.age) || !r.u8(h.options) || !r.u8(type) ||
      !r.u32(h.link_state_id) || !r.u32(h.advertising_router) || !r.u32(seq) ||
      !r.u16(h.checksum) || !r.u16(h.length)) {
    return err(DecodeErrorKind::kTruncated, "LSA header");
  }
  if (type != 1 && type != 5) {
    return err(DecodeErrorKind::kBadType, "LSA type " + std::to_string(type));
  }
  h.type = static_cast<WireLsaType>(type);
  h.seq = static_cast<std::int32_t>(seq);
  return h;
}

Decoded<WireLsa> read_lsa(Reader& r, const std::uint8_t* packet_data) {
  const std::size_t lsa_start = r.offset();
  Decoded<LsaHeader> header = read_lsa_header(r);
  if (!header) return header.error();
  WireLsa lsa;
  lsa.header = header.value();
  if (lsa.header.length < kLsaHeaderBytes) {
    return err(DecodeErrorKind::kBadLength,
               "LSA length " + std::to_string(lsa.header.length));
  }
  const std::size_t body_bytes = lsa.header.length - kLsaHeaderBytes;
  if (body_bytes > r.remaining()) {
    return err(DecodeErrorKind::kTruncated, "LSA body");
  }
  // The Fletcher checksum covers the instance's exact bytes minus the age
  // field; verify before trusting any body content.
  if (fletcher_checksum(packet_data + lsa_start + 2, lsa.header.length - 2, 14) !=
      lsa.header.checksum) {
    return err(DecodeErrorKind::kBadChecksum, "LSA checksum");
  }

  Reader body(r.cursor(), body_bytes);
  if (lsa.header.type == WireLsaType::kRouter) {
    RouterLsaBody router;
    std::uint8_t zero = 0;
    std::uint16_t num_links = 0;
    if (!body.u8(router.flags) || !body.u8(zero) || !body.u16(num_links)) {
      return err(DecodeErrorKind::kTruncated, "router LSA body");
    }
    if (zero != 0) return err(DecodeErrorKind::kBadValue, "router LSA pad");
    if (body.remaining() != std::size_t{num_links} * 12) {
      return err(DecodeErrorKind::kBadLength, "router LSA link count");
    }
    router.links.reserve(num_links);
    for (std::uint16_t i = 0; i < num_links; ++i) {
      RouterLink link;
      std::uint8_t link_type = 0;
      if (!body.u32(link.link_id) || !body.u32(link.link_data) ||
          !body.u8(link_type) || !body.u8(link.tos_count) || !body.u16(link.metric)) {
        return err(DecodeErrorKind::kTruncated, "router LSA link");
      }
      if (link_type < 1 || link_type > 4) {
        return err(DecodeErrorKind::kBadType,
                   "router link type " + std::to_string(link_type));
      }
      link.type = static_cast<RouterLinkType>(link_type);
      router.links.push_back(link);
    }
    lsa.body = std::move(router);
  } else {
    ExternalLsaBody ext;
    std::uint32_t metric_word = 0;
    if (body.remaining() != 16) {
      return err(DecodeErrorKind::kBadLength, "external LSA body");
    }
    if (!body.u32(ext.network_mask) || !body.u32(metric_word) ||
        !body.u32(ext.forwarding_address) || !body.u32(ext.route_tag)) {
      return err(DecodeErrorKind::kTruncated, "external LSA body");
    }
    if ((metric_word & 0x7f000000u) != 0) {
      return err(DecodeErrorKind::kBadValue, "external LSA TOS");
    }
    ext.type2_metric = (metric_word & 0x80000000u) != 0;
    ext.metric = metric_word & 0xffffffu;
    lsa.body = ext;
  }
  FIB_ASSERT(r.skip(body_bytes), "read_lsa: body skip");
  return lsa;
}

}  // namespace

const char* to_string(PacketType type) {
  switch (type) {
    case PacketType::kHello: return "Hello";
    case PacketType::kDatabaseDescription: return "DatabaseDescription";
    case PacketType::kLsRequest: return "LsRequest";
    case PacketType::kLsUpdate: return "LsUpdate";
    case PacketType::kLsAck: return "LsAck";
  }
  return "unknown";
}

PacketType type_of(const Packet& packet) {
  return static_cast<PacketType>(packet.body.index() + 1);
}

std::uint16_t fletcher_checksum(const std::uint8_t* data, std::size_t size,
                                std::size_t checksum_offset) {
  // RFC 905 Annex B, as applied by RFC 2328 12.1.7: the check bytes
  // themselves count as zero.
  std::int32_t c0 = 0;
  std::int32_t c1 = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const bool is_check_byte = i == checksum_offset || i == checksum_offset + 1;
    c0 = (c0 + (is_check_byte ? 0 : data[i])) % 255;
    c1 = (c1 + c0) % 255;
  }
  std::int32_t x = static_cast<std::int32_t>(
                       (static_cast<std::int64_t>(size) - checksum_offset - 1) * c0 -
                       c1) %
                   255;
  if (x <= 0) x += 255;
  std::int32_t y = 510 - c0 - x;
  if (y > 255) y -= 255;
  return static_cast<std::uint16_t>((x << 8) | y);
}

Buffer encode_lsa(const WireLsa& lsa) {
  Writer w;
  write_lsa_header(w, lsa.header);
  write_lsa_body(w, lsa);
  return w.take();
}

WireLsa finalize_lsa(WireLsa lsa) {
  lsa.header.checksum = 0;
  const std::size_t body_bytes =
      std::holds_alternative<RouterLsaBody>(lsa.body)
          ? 4 + 12 * std::get<RouterLsaBody>(lsa.body).links.size()
          : 16;
  FIB_ASSERT(kLsaHeaderBytes + body_bytes <= 0xffff, "finalize_lsa: LSA too large");
  lsa.header.length = static_cast<std::uint16_t>(kLsaHeaderBytes + body_bytes);
  const Buffer bytes = encode_lsa(lsa);
  FIB_ASSERT(bytes.size() == lsa.header.length, "finalize_lsa: length mismatch");
  lsa.header.checksum =
      fletcher_checksum(bytes.data() + 2, bytes.size() - 2, 14);
  return lsa;
}

bool lsa_checksum_ok(const WireLsa& lsa) {
  const Buffer bytes = encode_lsa(lsa);
  if (bytes.size() != lsa.header.length) return false;
  return fletcher_checksum(bytes.data() + 2, bytes.size() - 2, 14) ==
         lsa.header.checksum;
}

int compare_instances(const LsaHeader& a, const LsaHeader& b) {
  // RFC 2328 13.1: signed sequence number first, then checksum, then MaxAge
  // (a flushing instance beats a live one -- premature aging must win),
  // then the age tie-break: ages more than MaxAgeDiff apart name different
  // instances and the *younger* one is the more recent.
  if (a.seq != b.seq) return a.seq > b.seq ? 1 : -1;
  if (a.checksum != b.checksum) return a.checksum > b.checksum ? 1 : -1;
  const bool a_max = a.age == kMaxAge;
  const bool b_max = b.age == kMaxAge;
  if (a_max != b_max) return a_max ? 1 : -1;
  const std::uint16_t age_gap = a.age > b.age ? a.age - b.age : b.age - a.age;
  if (age_gap > kMaxAgeDiff) return a.age < b.age ? 1 : -1;
  return 0;
}

Buffer encode_packet(const Packet& packet) {
  Writer w;
  w.u8(kOspfVersion);
  w.u8(static_cast<std::uint8_t>(type_of(packet)));
  w.u16(0);  // length, patched below
  w.u32(packet.router_id);
  w.u32(packet.area_id);
  w.u16(0);  // checksum, patched below
  w.u16(0);  // AuType: null authentication
  w.u64(0);  // authentication data

  if (const auto* hello = std::get_if<HelloBody>(&packet.body)) {
    w.u32(hello->network_mask);
    w.u16(hello->hello_interval);
    w.u8(hello->options);
    w.u8(hello->priority);
    w.u32(hello->dead_interval);
    w.u32(hello->designated_router);
    w.u32(hello->backup_designated_router);
    for (const std::uint32_t n : hello->neighbors) w.u32(n);
  } else if (const auto* dd = std::get_if<DatabaseDescriptionBody>(&packet.body)) {
    w.u16(dd->interface_mtu);
    w.u8(dd->options);
    w.u8(dd->flags);
    w.u32(dd->dd_sequence);
    for (const LsaHeader& h : dd->headers) write_lsa_header(w, h);
  } else if (const auto* lsr = std::get_if<LsRequestBody>(&packet.body)) {
    for (const LsRequestEntry& e : lsr->entries) {
      w.u32(e.type);
      w.u32(e.link_state_id);
      w.u32(e.advertising_router);
    }
  } else if (const auto* lsu = std::get_if<LsUpdateBody>(&packet.body)) {
    FIB_ASSERT(lsu->lsas.size() <= 0xffffffff, "LSU: too many LSAs");
    w.u32(static_cast<std::uint32_t>(lsu->lsas.size()));
    for (const WireLsa& lsa : lsu->lsas) {
      write_lsa_header(w, lsa.header);
      write_lsa_body(w, lsa);
    }
  } else {
    const auto& ack = std::get<LsAckBody>(packet.body);
    for (const LsaHeader& h : ack.headers) write_lsa_header(w, h);
  }

  FIB_ASSERT(w.size() <= 0xffff, "encode_packet: packet too large");
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
  Buffer bytes = w.take();
  // D.4.1: checksum of the whole packet excluding the authentication field.
  const std::uint16_t checksum =
      internet_checksum(bytes.data(), bytes.size(), 16, 24, 12, 14);
  bytes[12] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[13] = static_cast<std::uint8_t>(checksum);
  return bytes;
}

Decoded<Packet> decode_packet(const std::uint8_t* data, std::size_t size) {
  if (size < kPacketHeaderBytes) {
    return err(DecodeErrorKind::kTruncated, "packet header");
  }
  Reader r(data, size);
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;
  std::uint16_t autype = 0;
  std::uint64_t auth = 0;
  Packet packet;
  FIB_ASSERT(r.u8(version) && r.u8(type) && r.u16(length) &&
                 r.u32(packet.router_id) && r.u32(packet.area_id) &&
                 r.u16(checksum) && r.u16(autype) && r.u64(auth),
             "decode_packet: header reads within checked size");
  if (version != kOspfVersion) {
    return err(DecodeErrorKind::kBadVersion,
               "OSPF version " + std::to_string(version));
  }
  if (type < 1 || type > 5) {
    return err(DecodeErrorKind::kBadType, "packet type " + std::to_string(type));
  }
  if (length < kPacketHeaderBytes) {
    return err(DecodeErrorKind::kBadLength,
               "packet length " + std::to_string(length));
  }
  if (length > size) return err(DecodeErrorKind::kTruncated, "packet body");
  if (length < size) return err(DecodeErrorKind::kTrailingBytes, "after packet");
  if (internet_checksum(data, length, 16, 24, 12, 14) != checksum) {
    return err(DecodeErrorKind::kBadChecksum, "packet checksum");
  }
  if (autype != 0) {
    return err(DecodeErrorKind::kBadValue, "unsupported AuType");
  }

  switch (static_cast<PacketType>(type)) {
    case PacketType::kHello: {
      HelloBody hello;
      if (!r.u32(hello.network_mask) || !r.u16(hello.hello_interval) ||
          !r.u8(hello.options) || !r.u8(hello.priority) ||
          !r.u32(hello.dead_interval) || !r.u32(hello.designated_router) ||
          !r.u32(hello.backup_designated_router)) {
        return err(DecodeErrorKind::kTruncated, "hello body");
      }
      if (r.remaining() % 4 != 0) {
        return err(DecodeErrorKind::kBadLength, "hello neighbor list");
      }
      while (r.remaining() > 0) {
        std::uint32_t neighbor = 0;
        FIB_ASSERT(r.u32(neighbor), "hello neighbor within checked size");
        hello.neighbors.push_back(neighbor);
      }
      packet.body = std::move(hello);
      break;
    }
    case PacketType::kDatabaseDescription: {
      DatabaseDescriptionBody dd;
      if (!r.u16(dd.interface_mtu) || !r.u8(dd.options) || !r.u8(dd.flags) ||
          !r.u32(dd.dd_sequence)) {
        return err(DecodeErrorKind::kTruncated, "DD body");
      }
      if (dd.flags & ~(kDdFlagInit | kDdFlagMore | kDdFlagMasterSlave)) {
        return err(DecodeErrorKind::kBadValue, "DD flags");
      }
      if (r.remaining() % kLsaHeaderBytes != 0) {
        return err(DecodeErrorKind::kBadLength, "DD summary list");
      }
      while (r.remaining() > 0) {
        Decoded<LsaHeader> header = read_lsa_header(r);
        if (!header) return header.error();
        dd.headers.push_back(header.value());
      }
      packet.body = std::move(dd);
      break;
    }
    case PacketType::kLsRequest: {
      LsRequestBody lsr;
      if (r.remaining() % 12 != 0) {
        return err(DecodeErrorKind::kBadLength, "LS request list");
      }
      while (r.remaining() > 0) {
        LsRequestEntry e;
        FIB_ASSERT(r.u32(e.type) && r.u32(e.link_state_id) &&
                       r.u32(e.advertising_router),
                   "LSR entry within checked size");
        if (e.type != 1 && e.type != 5) {
          return err(DecodeErrorKind::kBadType,
                     "LS request type " + std::to_string(e.type));
        }
        lsr.entries.push_back(e);
      }
      packet.body = std::move(lsr);
      break;
    }
    case PacketType::kLsUpdate: {
      LsUpdateBody lsu;
      std::uint32_t count = 0;
      if (!r.u32(count)) return err(DecodeErrorKind::kTruncated, "LSU count");
      // Bound the reservation by what the bytes could possibly hold -- a
      // hostile count must not translate into a giant allocation.
      lsu.lsas.reserve(std::min<std::size_t>(count, r.remaining() / kLsaHeaderBytes));
      for (std::uint32_t i = 0; i < count; ++i) {
        Decoded<WireLsa> lsa = read_lsa(r, data);
        if (!lsa) return lsa.error();
        lsu.lsas.push_back(std::move(lsa).value());
      }
      if (r.remaining() != 0) {
        return err(DecodeErrorKind::kBadLength, "LSU trailing bytes");
      }
      packet.body = std::move(lsu);
      break;
    }
    case PacketType::kLsAck: {
      LsAckBody ack;
      if (r.remaining() % kLsaHeaderBytes != 0) {
        return err(DecodeErrorKind::kBadLength, "LS ack list");
      }
      while (r.remaining() > 0) {
        Decoded<LsaHeader> header = read_lsa_header(r);
        if (!header) return header.error();
        ack.headers.push_back(header.value());
      }
      packet.body = std::move(ack);
      break;
    }
  }
  return packet;
}

}  // namespace fibbing::proto
