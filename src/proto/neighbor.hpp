#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "proto/codec.hpp"
#include "util/event_queue.hpp"

namespace fibbing::proto {

using BufferPtr = std::shared_ptr<const Buffer>;

/// RFC 2328 10.1 neighbor states (point-to-point interfaces skip Attempt;
/// 2-Way is transient on p2p links, where every neighbor becomes adjacent).
enum class NeighborState : std::uint8_t {
  kDown,
  kInit,
  kTwoWay,
  kExStart,
  kExchange,
  kLoading,
  kFull,
};

[[nodiscard]] const char* to_string(NeighborState state);

struct SessionConfig {
  /// DD summary pagination: headers per Database Description packet
  /// (96 x 20 bytes + fixed fields fits a 1500-byte interface MTU).
  std::size_t max_dd_headers = 72;
  /// LS Request pagination: entries per request packet.
  std::size_t max_request_entries = 32;
  /// RFC RxmtInterval analogue (scaled to the demo's seconds-scale timers).
  double rxmt_interval_s = 0.5;
  std::uint16_t interface_mtu = 1500;
  /// LS Update pagination: batches flush when the next LSA would push the
  /// packet past this many body bytes (an LSA larger by itself still goes
  /// alone, as real OSPF leaves oversized updates to IP fragmentation).
  /// Keeps LSR responses and retransmission bundles bounded -- the encoded
  /// packet length field is 16 bits.
  std::size_t max_update_bytes = 1400;
};

/// Control-plane traffic accounting, the observable that proves DD-based
/// synchronization exchanges O(changed) LSAs instead of O(all): after a
/// restoration the fresh sessions' `dd_headers_sent` covers the database
/// while `ls_requests_sent`/`lsas_sent` stay proportional to what actually
/// differed across the partition.
struct SessionCounters {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t hellos_sent = 0;
  std::uint64_t dds_sent = 0;
  std::uint64_t dd_headers_sent = 0;
  std::uint64_t lsrs_sent = 0;
  std::uint64_t ls_requests_sent = 0;
  std::uint64_t lsus_sent = 0;
  std::uint64_t lsas_sent = 0;  ///< full LSAs carried in LS Updates
  std::uint64_t lsacks_sent = 0;
  std::uint64_t retransmissions = 0;

  SessionCounters& operator+=(const SessionCounters& other);
  friend bool operator==(const SessionCounters&, const SessionCounters&) = default;
};

/// What a neighbor session needs from its router's link-state database.
/// Kept wire-level (no igp dependency) so the FSM is testable against a
/// fake store; igp::RouterProcess adapts it onto its Lsdb.
class DatabaseFacade {
 public:
  enum class DeliverResult : std::uint8_t { kNewer, kDuplicate, kStale };

  virtual ~DatabaseFacade() = default;

  /// Wire headers of every stored instance, including MaxAge tombstones
  /// (withdrawals must survive partitions, so they are summarized too).
  [[nodiscard]] virtual std::vector<LsaHeader> summarize() const = 0;

  /// The stored instance with this identity; null when absent.
  [[nodiscard]] virtual const WireLsa* lookup(const LsaIdentity& id) const = 0;

  /// A full, checksum-verified instance arrived from `from_router_id`.
  /// kNewer means the implementation installed it (and flooded it onward to
  /// its other adjacencies).
  virtual DeliverResult deliver(const WireLsa& lsa, std::uint32_t from_router_id) = 0;
};

/// One neighbor relationship: the RFC 2328 session FSM driving adjacency
/// formation (Hello), database synchronization (Database Description
/// summaries + LS Request/Update, sections 10.6-10.8) and reliable flooding
/// (retransmission list + LS Ack, section 13). All traffic leaves through
/// `send` as encoded packets; the caller decodes incoming buffers once and
/// dispatches the typed packet to `receive`.
class NeighborSession {
 public:
  using SendFn = std::function<void(const BufferPtr&)>;

  NeighborSession(std::uint32_t self_id, std::uint32_t peer_id, DatabaseFacade& db,
                  util::Scheduler& events, SessionConfig config, SendFn send);
  ~NeighborSession();
  NeighborSession(const NeighborSession&) = delete;
  NeighborSession& operator=(const NeighborSession&) = delete;

  /// The interface came up: begin the Hello exchange.
  void start();
  /// The interface died: back to Down, all lists cleared (RFC KillNbr).
  void shutdown();

  /// A packet from the peer (already decoded and checksum-verified).
  void receive(const Packet& packet);

  /// Flood an installed instance to this neighbor: sent as an LS Update and
  /// tracked on the retransmission list until acknowledged. No-op below
  /// Exchange -- the DD exchange covers everything installed before it.
  void flood(const WireLsa& lsa);

  /// Flooding fast path: same as flood(), but the caller already encoded
  /// the single-LSA LS Update (identical for every neighbor of a router),
  /// so the shared buffer is sent instead of re-encoding per session.
  void flood_encoded(const WireLsa& lsa, const BufferPtr& encoded);

  /// The encoded LS Update flood_encoded() expects for `lsa`.
  [[nodiscard]] static Buffer encode_flood(std::uint32_t router_id,
                                           const WireLsa& lsa);

  [[nodiscard]] NeighborState state() const { return state_; }
  /// Full, with nothing awaiting acknowledgment: the adjacency's databases
  /// are provably identical.
  [[nodiscard]] bool synchronized() const {
    return state_ == NeighborState::kFull && rxmt_.empty();
  }
  [[nodiscard]] std::uint32_t peer_id() const { return peer_id_; }
  [[nodiscard]] bool is_master() const { return master_; }
  [[nodiscard]] const SessionCounters& counters() const { return counters_; }

 private:
  void send_packet_(Packet&& packet);
  void send_hello_();
  void enter_exstart_();
  void reset_exchange_();
  void take_snapshot_();
  void send_dd_page_(bool init);
  void process_hello_(const HelloBody& hello);
  void process_dd_(const DatabaseDescriptionBody& dd);
  void process_lsr_(const LsRequestBody& lsr);
  void process_lsu_(const LsUpdateBody& lsu);
  void process_lsack_(const LsAckBody& ack);
  void process_summary_(const std::vector<LsaHeader>& headers);
  void finish_exchange_();
  void send_next_requests_();
  /// Send `lsas` as LS Updates, splitting into packets of at most
  /// max_update_bytes of LSA payload each.
  void send_update_batches_(const std::vector<const WireLsa*>& lsas);
  void schedule_rxmt_();
  void on_rxmt_timer_();

  std::uint32_t self_id_;
  std::uint32_t peer_id_;
  DatabaseFacade& db_;
  util::Scheduler& events_;
  SessionConfig config_;
  SendFn send_;

  NeighborState state_ = NeighborState::kDown;
  bool heard_peer_ = false;       ///< a Hello arrived on this interface
  bool introduced_self_ = false;  ///< we sent a Hello naming the peer
  bool master_ = false;
  std::uint32_t dd_seq_ = 0;
  bool sent_all_ = false;  ///< our last DD page carried M=0
  bool peer_done_ = false; ///< peer's last DD carried M=0
  std::vector<LsaHeader> summary_;  ///< DB snapshot taken entering Exchange
  std::size_t summary_pos_ = 0;

  std::deque<LsRequestEntry> wanted_;       ///< newer instances to request
  std::set<LsaIdentity> wanted_ids_;
  std::map<LsaIdentity, LsRequestEntry> outstanding_;  ///< requested, not yet seen

  std::map<LsaIdentity, WireLsa> rxmt_;  ///< flooded, awaiting ack
  util::EventHandle rxmt_timer_;

  SessionCounters counters_;
};

}  // namespace fibbing::proto
