#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "proto/codec.hpp"
#include "util/event_queue.hpp"

namespace fibbing::proto {

using BufferPtr = std::shared_ptr<const Buffer>;

/// RFC 2328 10.1 neighbor states (point-to-point interfaces skip Attempt;
/// 2-Way is transient on p2p links, where every neighbor becomes adjacent).
enum class NeighborState : std::uint8_t {
  kDown,
  kInit,
  kTwoWay,
  kExStart,
  kExchange,
  kLoading,
  kFull,
};

[[nodiscard]] const char* to_string(NeighborState state);

struct SessionConfig {
  /// DD summary pagination: headers per Database Description packet
  /// (96 x 20 bytes + fixed fields fits a 1500-byte interface MTU).
  std::size_t max_dd_headers = 72;
  /// LS Request pagination: entries per request packet.
  std::size_t max_request_entries = 32;
  /// RFC RxmtInterval analogue (scaled to the demo's seconds-scale timers).
  double rxmt_interval_s = 0.5;
  std::uint16_t interface_mtu = 1500;
  /// LS Update pagination: batches flush when the next LSA would push the
  /// packet past this many body bytes (an LSA larger by itself still goes
  /// alone, as real OSPF leaves oversized updates to IP fragmentation).
  /// Keeps LSR responses and retransmission bundles bounded -- the encoded
  /// packet length field is 16 bits.
  std::size_t max_update_bytes = 1400;
  /// RFC HelloInterval: periodic Hello cadence. <= 0 disables protocol
  /// liveness entirely (bring-up Hellos only) -- the default here, so a
  /// bare session harness's event queue still drains; IgpTiming turns it
  /// on for every domain.
  double hello_interval_s = 0.0;
  /// RFC RouterDeadInterval: this much Hello silence fires the inactivity
  /// timer and the adjacency falls to Down. Only armed when liveness is
  /// enabled (hello_interval_s > 0).
  double dead_interval_s = 0.0;
  /// RFC 13.5 flood coalescing: floods queued within this window leave as
  /// one LS Update packet. <= 0 sends one LSU per flood immediately.
  double flood_batch_window_s = 0.0;
  /// RFC 13.5 delayed acknowledgment window; must stay well under the
  /// peer's RxmtInterval. <= 0 acks every LS Update immediately.
  double ack_delay_s = 0.0;
};

/// Adjacency lifecycle notifications a session's owner can subscribe to
/// (RouterProcess turns these into Router-LSA re-originations).
enum class SessionEvent : std::uint8_t {
  /// The adjacency reached Full: the link is usable for routing.
  kAdjacencyFull,
  /// The adjacency fell out of Full/exchange without an administrative
  /// shutdown: RouterDeadInterval expired or a 1-way Hello proved the peer
  /// forgot us. The link must stop being advertised until re-Full.
  kAdjacencyLost,
};

/// Control-plane traffic accounting, the observable that proves DD-based
/// synchronization exchanges O(changed) LSAs instead of O(all): after a
/// restoration the fresh sessions' `dd_headers_sent` covers the database
/// while `ls_requests_sent`/`lsas_sent` stay proportional to what actually
/// differed across the partition.
struct SessionCounters {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t hellos_sent = 0;
  std::uint64_t dds_sent = 0;
  std::uint64_t dd_headers_sent = 0;
  std::uint64_t lsrs_sent = 0;
  std::uint64_t ls_requests_sent = 0;
  std::uint64_t lsus_sent = 0;
  std::uint64_t lsas_sent = 0;  ///< full LSAs carried in LS Updates
  std::uint64_t lsacks_sent = 0;
  std::uint64_t retransmissions = 0;
  /// Hellos dropped by the RFC 10.5 parameter checks (HelloInterval,
  /// RouterDeadInterval or network-mask mismatch): a misconfigured peer
  /// never forms an adjacency instead of forming one that flaps forever.
  std::uint64_t hellos_rejected = 0;

  SessionCounters& operator+=(const SessionCounters& other);
  friend bool operator==(const SessionCounters&, const SessionCounters&) = default;
};

/// What a neighbor session needs from its router's link-state database.
/// Kept wire-level (no igp dependency) so the FSM is testable against a
/// fake store; igp::RouterProcess adapts it onto its Lsdb.
class DatabaseFacade {
 public:
  enum class DeliverResult : std::uint8_t { kNewer, kDuplicate, kStale };

  virtual ~DatabaseFacade() = default;

  /// Wire headers of every stored instance, including MaxAge tombstones
  /// (withdrawals must survive partitions, so they are summarized too).
  [[nodiscard]] virtual std::vector<LsaHeader> summarize() const = 0;

  /// The stored instance with this identity; null when absent.
  [[nodiscard]] virtual const WireLsa* lookup(const LsaIdentity& id) const = 0;

  /// A full, checksum-verified instance arrived from `from_router_id`.
  /// kNewer means the implementation installed it (and flooded it onward to
  /// its other adjacencies).
  virtual DeliverResult deliver(const WireLsa& lsa, std::uint32_t from_router_id) = 0;

  /// A flooded instance left this session's retransmission list (direct or
  /// implied acknowledgment). Lets the database run the RFC 14 MaxAge
  /// flushing check the moment a tombstone might be fully acknowledged.
  virtual void on_flood_acked(const LsaIdentity& /*id*/) {}
};

/// One neighbor relationship: the RFC 2328 session FSM driving adjacency
/// formation (Hello), database synchronization (Database Description
/// summaries + LS Request/Update, sections 10.6-10.8) and reliable flooding
/// (retransmission list + LS Ack, section 13). All traffic leaves through
/// `send` as encoded packets; the caller decodes incoming buffers once and
/// dispatches the typed packet to `receive`.
class NeighborSession {
 public:
  using SendFn = std::function<void(const BufferPtr&)>;
  using EventFn = std::function<void(SessionEvent)>;

  NeighborSession(std::uint32_t self_id, std::uint32_t peer_id, DatabaseFacade& db,
                  util::Scheduler& events, SessionConfig config, SendFn send);
  ~NeighborSession();
  NeighborSession(const NeighborSession&) = delete;
  NeighborSession& operator=(const NeighborSession&) = delete;

  /// Adjacency lifecycle callback (reaching Full, losing liveness). An
  /// administrative shutdown() fires nothing -- the owner initiated it.
  void set_on_event(EventFn fn) { on_event_ = std::move(fn); }

  /// The interface came up: begin the Hello exchange (and, with liveness
  /// enabled, arm the HelloInterval and RouterDeadInterval timers).
  void start();
  /// The interface died: back to Down, all lists cleared (RFC KillNbr).
  void shutdown();

  /// A packet from the peer (already decoded and checksum-verified).
  void receive(const Packet& packet);

  /// Flood an installed instance to this neighbor: sent as an LS Update and
  /// tracked on the retransmission list until acknowledged. With a flood
  /// batch window configured the instance is coalesced with other floods
  /// landing inside the window into one LS Update (RFC 13.5). No-op below
  /// Exchange -- the DD exchange covers everything installed before it.
  void flood(const WireLsa& lsa);

  [[nodiscard]] NeighborState state() const { return state_; }
  /// Full, with nothing awaiting acknowledgment or queued: the adjacency's
  /// databases are provably identical.
  [[nodiscard]] bool synchronized() const {
    return state_ == NeighborState::kFull && rxmt_.empty() &&
           pending_flood_.empty() && pending_ack_.empty();
  }
  /// Nothing left for this session to do right now: either synchronized,
  /// or torn down (Down/Init -- e.g. a dead peer) with every list empty.
  /// Mid-exchange states are never quiescent. The domain's convergence
  /// check uses this, so a timed-out adjacency does not stall it.
  [[nodiscard]] bool quiescent() const {
    if (state_ == NeighborState::kFull) return synchronized();
    return state_ <= NeighborState::kInit && rxmt_.empty() &&
           pending_flood_.empty() && pending_ack_.empty();
  }
  /// This session still references the instance: on its retransmission
  /// list, queued for flooding, or awaited from the peer. A MaxAge
  /// tombstone cannot be flushed from the database while true.
  [[nodiscard]] bool references(const LsaIdentity& id) const {
    return rxmt_.contains(id) || pending_flood_.contains(id) ||
           outstanding_.contains(id) || wanted_ids_.contains(id);
  }
  /// Mid database exchange (ExStart..Loading): the RFC 14 flush guard.
  [[nodiscard]] bool in_exchange() const {
    return state_ >= NeighborState::kExStart && state_ < NeighborState::kFull;
  }
  [[nodiscard]] std::uint32_t peer_id() const { return peer_id_; }
  [[nodiscard]] bool is_master() const { return master_; }
  [[nodiscard]] const SessionCounters& counters() const { return counters_; }

 private:
  void send_packet_(Packet&& packet);
  void send_hello_();
  [[nodiscard]] bool hello_params_ok_(const HelloBody& hello);
  void enter_exstart_();
  void enter_full_();
  void reset_exchange_();
  void take_snapshot_();
  void send_dd_page_(bool init);
  void process_hello_(const HelloBody& hello);
  void process_dd_(const DatabaseDescriptionBody& dd);
  void process_lsr_(const LsRequestBody& lsr);
  void process_lsu_(const LsUpdateBody& lsu);
  void process_lsack_(const LsAckBody& ack);
  void process_summary_(const std::vector<LsaHeader>& headers);
  void finish_exchange_();
  void send_next_requests_();
  /// Send `lsas` as LS Updates, splitting into packets of at most
  /// max_update_bytes of LSA payload each. Every transmitted copy's age is
  /// advanced by InfTransDelay (RFC 13.3) -- the Fletcher checksum excludes
  /// the age field, so the instance stays byte-verifiable.
  void send_update_batches_(const std::vector<const WireLsa*>& lsas);
  void erase_rxmt_(std::map<LsaIdentity, WireLsa>::iterator it);
  void schedule_rxmt_();
  void on_rxmt_timer_();
  // Liveness timers (armed only when hello_interval_s > 0).
  void arm_hello_timer_();
  void arm_inactivity_timer_();
  void on_inactivity_();
  // RFC 13.5 coalescing timers.
  void arm_flood_flush_();
  void flush_pending_floods_();
  void queue_ack_(const LsaHeader& header);
  void flush_pending_acks_();
  // Exchange watchdog: under packet loss, re-issues the last DD / the
  // outstanding LS Requests on the RxmtInterval cadence so ExStart..Loading
  // cannot wedge on a single dropped packet.
  void arm_watchdog_();
  void on_watchdog_();
  void fire_event_(SessionEvent event);

  std::uint32_t self_id_;
  std::uint32_t peer_id_;
  DatabaseFacade& db_;
  util::Scheduler& events_;
  SessionConfig config_;
  SendFn send_;
  EventFn on_event_;

  NeighborState state_ = NeighborState::kDown;
  bool heard_peer_ = false;       ///< a Hello arrived on this interface
  bool introduced_self_ = false;  ///< we sent a Hello naming the peer
  bool master_ = false;
  std::uint32_t dd_seq_ = 0;
  bool sent_all_ = false;  ///< our last DD page carried M=0
  bool peer_done_ = false; ///< peer's last DD carried M=0
  std::vector<LsaHeader> summary_;  ///< DB snapshot taken entering Exchange
  std::size_t summary_pos_ = 0;
  /// Our last non-init DD page, resent on the watchdog (master) or on a
  /// duplicate poll from the master (slave, RFC 10.8).
  std::optional<DatabaseDescriptionBody> last_dd_;

  std::deque<LsRequestEntry> wanted_;       ///< newer instances to request
  std::set<LsaIdentity> wanted_ids_;
  std::map<LsaIdentity, LsRequestEntry> outstanding_;  ///< requested, not yet seen

  std::map<LsaIdentity, WireLsa> rxmt_;  ///< flooded, awaiting ack
  util::EventHandle rxmt_timer_;
  /// Floods coalescing toward the next batch flush (RFC 13.5); newer
  /// instances queued for the same identity supersede in place.
  std::map<LsaIdentity, WireLsa> pending_flood_;
  util::EventHandle flood_flush_timer_;
  std::vector<LsaHeader> pending_ack_;  ///< delayed acknowledgments
  util::EventHandle ack_timer_;
  util::EventHandle hello_timer_;
  util::EventHandle inactivity_timer_;
  util::EventHandle watchdog_timer_;

  SessionCounters counters_;  // obs:registered(proto)
};

}  // namespace fibbing::proto
