#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "igp/lsa.hpp"
#include "proto/codec.hpp"
#include "proto/neighbor.hpp"
#include "proto/translate.hpp"
#include "util/result.hpp"

namespace fibbing::proto {

/// The Fibbing controller's southbound adjacency: the paper's controller
/// speaks just enough OSPF to a session router to inject and retract lies.
/// Lies leave as wire-format AS-external LS Updates; retraction is premature
/// aging (the same instance re-flooded at MaxAge). The session tracks LS
/// acknowledgments from the session router, so the domain can tell when an
/// injection has demonstrably reached the routing plane.
class ControllerSession {
 public:
  using SendFn = std::function<void(const BufferPtr&)>;

  struct Counters {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t lsus_sent = 0;
    std::uint64_t lsas_sent = 0;
    std::uint64_t acks_received = 0;
    /// Injections refused because their wire identity (appendix-E host
    /// bits) collided with a different live lie's.
    std::uint64_t alias_rejections = 0;
    /// Tombstones re-issued because the session router echoed a live
    /// instance of a lie we had already retracted (a healed partition
    /// resurrecting a stale announcement whose tombstone was flushed).
    std::uint64_t reflushes = 0;

    friend bool operator==(const Counters&, const Counters&) = default;
  };

  ControllerSession(const AddressMap& addrs, SendFn send);

  /// Announce (or update) a lie: per-lie sequence numbers make re-injection
  /// supersede the standing instance, exactly as in IgpDomain's previous
  /// in-memory path. Fails (nothing hits the wire) when the lie's wire
  /// identity -- prefix network | (lie id & host bits), appendix E -- is
  /// already owned by a *different* live lie: coexisting they would silently
  /// supersede each other in every LSDB. A lie whose identity matches only a
  /// withdrawn lie's tombstone is accepted; its sequence space continues
  /// from the tombstone's so the announcement demonstrably supersedes it.
  [[nodiscard]] util::Status inject(const igp::ExternalLsa& ext);

  /// Retract a previously injected lie by flooding its MaxAge tombstone
  /// (RFC 2328 14.1 premature aging). Fails -- nothing hits the wire --
  /// when the lie id was never announced, or is already retracted.
  [[nodiscard]] util::Status retract(std::uint64_t lie_id);

  /// An encoded packet from the session router: LS Acks, or an LS Update
  /// echoing a controller-originated external the router installed from a
  /// real neighbor (the resurrection signal -- see inject/retract).
  void receive(const BufferPtr& buffer);

  [[nodiscard]] bool knows(std::uint64_t lie_id) const {
    return last_.contains(lie_id);
  }
  /// Every update acknowledged by the session router.
  [[nodiscard]] bool drained() const { return unacked_.empty(); }
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void send_update_(const igp::ExternalLsa& ext, igp::SeqNum seq);

  const AddressMap& addrs_;
  SendFn send_;
  std::unordered_map<std::uint64_t, igp::SeqNum> lie_seq_;
  /// Last announced content per lie id; the tombstone reuses its prefix so
  /// the retraction carries the same wire identity as the announcement
  /// (`withdrawn` records which of the two is standing).
  std::unordered_map<std::uint64_t, igp::ExternalLsa> last_;
  /// Which lie id currently owns each external link state id on the wire --
  /// the aliasing guard. Ownership survives retraction (the tombstone keeps
  /// the identity) and transfers when a colliding lie supersedes it.
  std::unordered_map<std::uint32_t, std::uint64_t> wire_id_owner_;
  std::map<LsaIdentity, LsaHeader> unacked_;
  Counters counters_;  // obs:registered(southbound)
};

}  // namespace fibbing::proto
