#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace fibbing::proto {

/// An encoded protocol message: network-order bytes as they would cross the
/// wire to a real router.
using Buffer = std::vector<std::uint8_t>;

/// Why a buffer failed to decode. Every malformed input maps to one of
/// these -- decoding never asserts and never reads out of bounds, so a
/// corrupted or hostile peer cannot crash the process (the fuzz suite
/// exercises exactly that contract).
enum class DecodeErrorKind : std::uint8_t {
  kTruncated,      ///< buffer ends before a field or declared length
  kBadVersion,     ///< OSPF version != 2
  kBadType,        ///< unknown packet or LSA type code
  kBadLength,      ///< a length field is inconsistent with the buffer
  kBadChecksum,    ///< packet or LSA checksum mismatch
  kBadValue,       ///< a field value outside its valid domain
  kTrailingBytes,  ///< well-formed prefix followed by unconsumed bytes
};

[[nodiscard]] const char* to_string(DecodeErrorKind kind);

struct DecodeError {
  DecodeErrorKind kind = DecodeErrorKind::kBadValue;
  std::string detail;
};

/// Minimal expected-like carrier for decode results. Unlike util::Result the
/// error channel is *typed*: callers (and the fuzz tests) branch on the kind.
template <typename T>
class [[nodiscard]] Decoded {
 public:
  Decoded(T value) : value_(std::move(value)), ok_(true) {}  // NOLINT: implicit
  Decoded(DecodeError error) : error_(std::move(error)) {}   // NOLINT: implicit

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  [[nodiscard]] const T& value() const& {
    FIB_ASSERT(ok_, "Decoded::value() on error");
    return value_;
  }
  [[nodiscard]] T&& value() && {
    FIB_ASSERT(ok_, "Decoded::value() on error");
    return std::move(value_);
  }
  [[nodiscard]] const DecodeError& error() const {
    FIB_ASSERT(!ok_, "Decoded::error() on success");
    return error_;
  }

 private:
  T value_{};
  DecodeError error_{};
  bool ok_ = false;
};

/// Appends multi-byte fields in network (big-endian) order.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Overwrite a previously written 16-bit field (length/checksum backpatch).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    FIB_ASSERT(offset + 2 <= buf_.size(), "Writer::patch_u16 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Buffer& data() const { return buf_; }
  [[nodiscard]] Buffer take() { return std::move(buf_); }

 private:
  Buffer buf_;
};

/// Bounds-checked big-endian reads. Every read reports truncation instead of
/// walking past the end; `offset`/`remaining` let the codec validate length
/// fields against what is actually present.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool u8(std::uint8_t& out) {
    if (pos_ + 1 > size_) return false;
    out = data_[pos_++];
    return true;
  }
  [[nodiscard]] bool u16(std::uint16_t& out) {
    if (pos_ + 2 > size_) return false;
    out = static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) |
                                     std::uint16_t{data_[pos_ + 1]});
    pos_ += 2;
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0;
    std::uint16_t lo = 0;
    if (pos_ + 4 > size_ || !u16(hi) || !u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | std::uint32_t{lo};
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t& out) {
    std::uint32_t hi = 0;
    std::uint32_t lo = 0;
    if (pos_ + 8 > size_ || !u32(hi) || !u32(lo)) return false;
    out = (std::uint64_t{hi} << 32) | std::uint64_t{lo};
    return true;
  }
  [[nodiscard]] bool skip(std::size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] const std::uint8_t* cursor() const { return data_ + pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fibbing::proto
