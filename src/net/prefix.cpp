#include "net/prefix.hpp"

#include "util/strings.hpp"

namespace fibbing::net {

Prefix::Prefix(Ipv4 network, std::uint8_t length)
    : network_(network.bits() & mask_for(length)), length_(length) {
  FIB_ASSERT(length <= 32, "Prefix: length > 32");
}

util::Result<Prefix> Prefix::parse(std::string_view text) {
  const auto parts = util::split(text, '/');
  if (parts.size() != 2) {
    return util::Result<Prefix>::failure("malformed prefix (want a.b.c.d/len): " +
                                         std::string(text));
  }
  auto addr = Ipv4::parse(parts[0]);
  if (!addr) return util::Result<Prefix>::failure(addr.error());
  const long long len = util::parse_uint_or(parts[1], -1);
  if (len < 0 || len > 32) {
    return util::Result<Prefix>::failure("malformed prefix length: " + std::string(text));
  }
  return Prefix(addr.value(), static_cast<std::uint8_t>(len));
}

bool Prefix::contains(Ipv4 address) const {
  return (address.bits() & mask_for(length_)) == network_.bits();
}

bool Prefix::contains(const Prefix& other) const {
  return other.length() >= length_ && contains(other.network());
}

Ipv4 Prefix::host(std::uint32_t n) const {
  FIB_ASSERT(length_ == 32 || n < (std::uint64_t{1} << (32 - length_)),
             "Prefix::host: index outside prefix");
  return Ipv4(network_.bits() | n);
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace fibbing::net
