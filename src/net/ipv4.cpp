#include "net/ipv4.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace fibbing::net {

util::Result<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return util::Result<Ipv4>::failure("malformed IPv4 address: " + std::string(text));
  }
  std::uint32_t bits = 0;
  for (const auto& part : parts) {
    const long long octet = util::parse_uint_or(part, -1);
    if (octet < 0 || octet > 255) {
      return util::Result<Ipv4>::failure("malformed IPv4 octet: " + std::string(text));
    }
    bits = (bits << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4(bits);
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xff,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

}  // namespace fibbing::net
