#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/prefix.hpp"

namespace fibbing::net {

/// Longest-prefix-match binary trie mapping Prefix -> T. This is the data
/// structure behind every router FIB in the data-plane simulator.
///
/// Operations: insert/overwrite, exact erase, exact lookup, and LPM lookup.
/// The trie owns its values; lookups return pointers that stay valid until
/// the next mutation of the matched entry.
template <typename T>
class LpmTrie {
 public:
  /// Insert or overwrite the value at `prefix`. Returns true if inserted,
  /// false if an existing entry was overwritten.
  bool insert(const Prefix& prefix, T value) {
    Node* node = &root_;
    const std::uint32_t bits = prefix.network().bits();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->child[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool inserted = !node->value.has_value();
    node->value = std::move(value);
    if (inserted) ++size_;
    return inserted;
  }

  /// Remove the entry exactly at `prefix`. Returns true if one existed.
  bool erase(const Prefix& prefix) {
    Node* node = find_node_(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;  // empty branches are kept; fine for simulator lifetimes
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* exact(const Prefix& prefix) const {
    const Node* node = find_node_(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }
  [[nodiscard]] T* exact(const Prefix& prefix) {
    return const_cast<T*>(std::as_const(*this).exact(prefix));
  }

  /// Longest-prefix match for a destination address, with the matched
  /// prefix. nullopt when no entry covers the address.
  struct Match {
    Prefix prefix;
    const T* value;
  };
  [[nodiscard]] std::optional<Match> lookup(Ipv4 address) const {
    const Node* node = &root_;
    std::optional<Match> best;
    if (node->value.has_value()) best = Match{Prefix(Ipv4(0), 0), &*node->value};
    const std::uint32_t bits = address.bits();
    for (std::uint8_t depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node == nullptr) break;
      if (node->value.has_value()) {
        const std::uint8_t len = depth + 1;
        best = Match{Prefix(Ipv4(bits & mask_for(len)), len), &*node->value};
      }
    }
    return best;
  }

  /// Visit every (prefix, value) pair in lexicographic (DFS) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk_(&root_, 0, 0, fn);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  void clear() {
    root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  [[nodiscard]] const Node* find_node_(const Prefix& prefix) const {
    const Node* node = &root_;
    const std::uint32_t bits = prefix.network().bits();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }
  [[nodiscard]] Node* find_node_(const Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).find_node_(prefix));
  }

  template <typename Fn>
  static void walk_(const Node* node, std::uint32_t bits, std::uint8_t depth, Fn& fn) {
    if (node->value.has_value()) {
      fn(Prefix(Ipv4(bits), depth), *node->value);
    }
    for (int bit = 0; bit < 2; ++bit) {
      if (node->child[bit]) {
        FIB_ASSERT(depth < 32, "LpmTrie: trie deeper than 32 bits");
        const std::uint32_t next =
            bit ? (bits | (std::uint32_t{1} << (31 - depth))) : bits;
        walk_(node->child[bit].get(), next, depth + 1, fn);
      }
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace fibbing::net
