#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace fibbing::net {

/// An IPv4 address as a host-order 32-bit value. Plain value type: cheap to
/// copy, totally ordered, hashable.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation ("203.0.113.7").
  [[nodiscard]] static util::Result<Ipv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4 a, Ipv4 b) = default;

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace fibbing::net

template <>
struct std::hash<fibbing::net::Ipv4> {
  std::size_t operator()(fibbing::net::Ipv4 a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};
