#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "util/result.hpp"

namespace fibbing::net {

/// An IPv4 CIDR prefix. Canonical form: host bits are zeroed on
/// construction, so two prefixes covering the same block compare equal.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4 network, std::uint8_t length);

  /// Parse "a.b.c.d/len".
  [[nodiscard]] static util::Result<Prefix> parse(std::string_view text);

  [[nodiscard]] Ipv4 network() const { return network_; }
  [[nodiscard]] std::uint8_t length() const { return length_; }
  [[nodiscard]] bool contains(Ipv4 address) const;
  [[nodiscard]] bool contains(const Prefix& other) const;
  /// The n-th host address inside the prefix (n=0 is the network address).
  [[nodiscard]] Ipv4 host(std::uint32_t n) const;
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4 network_;
  std::uint8_t length_ = 0;
};

/// Netmask for a prefix length (host order); length 0 -> 0.
[[nodiscard]] constexpr std::uint32_t mask_for(std::uint8_t length) {
  return length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
}

}  // namespace fibbing::net

template <>
struct std::hash<fibbing::net::Prefix> {
  std::size_t operator()(const fibbing::net::Prefix& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.network().bits() * 31u + p.length());
  }
};
