// LpmTrie is header-only (template); this TU pins the header's compilation
// so build errors surface in the library build rather than first use.
#include "net/lpm_trie.hpp"

namespace fibbing::net {
namespace {
// Instantiate with a representative payload to type-check the template.
[[maybe_unused]] void instantiate() {
  LpmTrie<int> trie;
  trie.insert(Prefix(Ipv4(10, 0, 0, 0), 8), 1);
  (void)trie.lookup(Ipv4(10, 1, 2, 3));
}
}  // namespace
}  // namespace fibbing::net
