#!/usr/bin/env python3
"""Golden-fixture tests for fibbing_lint.py (run by ctest, label `unit`).

The fixture trees under lint_fixtures/ are miniature repos: `bad/` must
produce exactly the findings in its expected.txt (prefix-matched so messages
can be reworded without re-goldening line numbers), `good/` must be clean --
it holds the deterministic idioms and waiver forms the linter promises to
accept, so a regression that starts flagging them fails here before it fails
on the real tree.
"""

import os
import subprocess
import sys
import unittest

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(SCRIPTS_DIR, "fibbing_lint.py")
FIXTURES = os.path.join(SCRIPTS_DIR, "lint_fixtures")


def run_linter(root, *extra):
    return subprocess.run(
        [sys.executable, LINTER, "--root", root, "src", *extra],
        capture_output=True, text=True, check=False)


def finding_lines(stdout):
    return [line for line in stdout.splitlines()
            if not line.startswith(("fibbing-lint:", "::"))]


class BadTree(unittest.TestCase):
    def setUp(self):
        self.result = run_linter(os.path.join(FIXTURES, "bad"))

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.result.returncode, 1, self.result.stdout)

    def test_findings_match_golden(self):
        with open(os.path.join(FIXTURES, "bad", "expected.txt")) as fh:
            golden = [line.strip() for line in fh if line.strip()]
        findings = finding_lines(self.result.stdout)
        self.assertEqual(len(findings), len(golden),
                         "finding count drifted:\n" + self.result.stdout)
        for expected, actual in zip(sorted(golden), sorted(findings)):
            self.assertTrue(actual.startswith(expected),
                            f"expected prefix {expected!r}, got {actual!r}")

    def test_github_mode_emits_error_annotations(self):
        result = run_linter(os.path.join(FIXTURES, "bad"), "--github")
        annotations = [line for line in result.stdout.splitlines()
                       if line.startswith("::error file=")]
        self.assertEqual(len(annotations), len(finding_lines(result.stdout)))
        self.assertIn("title=fibbing-lint", annotations[0])


class GoodTree(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        result = run_linter(os.path.join(FIXTURES, "good"))
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertEqual(finding_lines(result.stdout), [], result.stdout)


class UsageErrors(unittest.TestCase):
    def test_bad_root_is_a_usage_error(self):
        result = run_linter(os.path.join(FIXTURES, "does-not-exist"))
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
