#!/usr/bin/env python3
"""Render the control-loop reaction-latency breakdown from a trace dump.

Input is the Chrome trace-event JSON written by obs::TraceRecorder
(`{"traceEvents": [...]}`, e.g. bench_fig2 --trace-out, or any test dumping
`tracer().chrome_json()`). Each mitigation is one trace (args.trace); every
event carries a virtual-clock timestamp in microseconds. The report shows,
per trace and in aggregate, when each stage of the paper's Fig. 2 chain
(monitor -> trigger -> solve -> compile -> verify -> inject -> lsa_install
-> spf -> table_flip) first fired relative to the trace root.

Usage: trace_report.py TRACE.json [--per-trace]
"""

from __future__ import annotations

import argparse
import json
import sys

# Causal chain order (mirrors obs::Stage); anything else sorts after.
STAGE_ORDER = [
    "monitor",
    "trigger",
    "solve",
    "compile",
    "verify",
    "inject",
    "lsa_install",
    "spf",
    "table_flip",
]


def stage_rank(name: str) -> int:
    try:
        return STAGE_ORDER.index(name)
    except ValueError:
        return len(STAGE_ORDER)


def percentile(samples: list[float], p: float) -> float:
    """Type-7 (linear interpolation) percentile, matching util::percentile."""
    if not samples:
        return 0.0
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def load_traces(path: str) -> dict[int, list[dict]]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    traces: dict[int, list[dict]] = {}
    for ev in events:
        if ev.get("ph") == "E":  # span ends carry no fresh timing information
            continue
        trace = ev.get("args", {}).get("trace", 0)
        if not trace:
            continue
        traces.setdefault(trace, []).append(ev)
    return traces


def stage_offsets(events: list[dict]) -> tuple[float, dict[str, float], float]:
    """(root_us, {stage: first offset_us}, end_to_end_us) for one trace."""
    root = min(ev["ts"] for ev in events)
    last = max(ev["ts"] for ev in events)
    first: dict[str, float] = {}
    for ev in events:
        name = ev["name"]
        off = ev["ts"] - root
        if name not in first or off < first[name]:
            first[name] = off
    return root, first, last - root


def fmt_ms(us: float) -> str:
    return f"{us / 1000.0:10.3f}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--per-trace",
        action="store_true",
        help="print every trace's own stage table, not just the aggregate",
    )
    args = parser.parse_args()

    traces = load_traces(args.trace)
    if not traces:
        print("no traces in dump (was the run recorded with tracing on?)")
        return 1

    # Aggregate: per stage, the first-offset across traces.
    agg: dict[str, list[float]] = {}
    e2e: list[float] = []
    for trace_id in sorted(traces):
        _, first, total = stage_offsets(traces[trace_id])
        for name, off in first.items():
            agg.setdefault(name, []).append(off)
        e2e.append(total)

    print(f"{len(traces)} trace(s): reaction-latency breakdown "
          "(virtual-clock offsets from trace root)")
    print(f"{'stage':<12} {'traces':>6} {'p50 ms':>10} {'p99 ms':>10} {'max ms':>10}")
    for name in sorted(agg, key=stage_rank):
        samples = agg[name]
        print(f"{name:<12} {len(samples):>6} {fmt_ms(percentile(samples, 50))} "
              f"{fmt_ms(percentile(samples, 99))} {fmt_ms(max(samples))}")
    print(f"{'end_to_end':<12} {len(e2e):>6} {fmt_ms(percentile(e2e, 50))} "
          f"{fmt_ms(percentile(e2e, 99))} {fmt_ms(max(e2e))}")

    if args.per_trace:
        for trace_id in sorted(traces):
            root, first, total = stage_offsets(traces[trace_id])
            print(f"\ntrace {trace_id} (root at {root / 1e6:.6f} s, "
                  f"end-to-end {total / 1000.0:.3f} ms)")
            for name in sorted(first, key=stage_rank):
                nodes = sorted({
                    ev["tid"] for ev in traces[trace_id] if ev["name"] == name
                })
                node_list = ",".join(
                    "ctrl" if n == 0xFFFFFFFF else str(n) for n in nodes)
                print(f"  {name:<12} +{first[name] / 1000.0:9.3f} ms  "
                      f"[{node_list}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
