#!/usr/bin/env python3
"""Diff two google-benchmark JSON files and flag perf regressions.

Usage:
  compare_bench.py --baseline OLD.json --current NEW.json \
      [--threshold 0.10] [--fail-on-regression]

Benchmarks are matched by name. Two kinds of findings:
  * time regression  -- real_time grew by more than the threshold
    (lower is better; improvements are reported but never flagged);
  * counter drift    -- a tracked counter (any user counter in the JSON,
    e.g. claim aggregates like `verified` or cache work like `spf_full`)
    moved by more than the threshold in either direction. Counters encode
    claims, so *any* large move deserves eyes, not only increases.
  * latency regression -- a histogram-style counter (a `_p50`/`_p99`/
    `_max`/... suffixed key, e.g. the trace-derived reaction latencies
    exported by FibbingService::telemetry_snapshot) GREW by more than the
    threshold. Latencies are one-sided like real_time: getting faster is an
    improvement, not drift, so only growth is flagged.

Output is plain text plus GitHub annotation lines (::warning) so findings
surface on the workflow summary. Exit status is 0 unless
--fail-on-regression is given and at least one finding was flagged:
baseline machines in shared CI are noisy, so the default is to warn, not
to break the build; the uploaded artifacts keep the full history.
"""

import argparse
import json
import sys

# Keys of a benchmark entry that are not user counters.
STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
    "label", "error_occurred", "error_message", "big_o", "rms",
    "items_per_second", "bytes_per_second",
}

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Histogram-style counter keys (reaction-latency percentiles and friends):
# lower is better, so they are compared growth-only, like real_time.
LATENCY_SUFFIXES = ("_p50", "_p90", "_p95", "_p99", "_p999", "_max", "_mean")


def is_latency_key(key):
    return key.endswith(LATENCY_SUFFIXES)


def load(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # compare raw runs; aggregates would double-count
        out[bench["name"]] = bench
    return out


def real_time_ns(bench):
    return bench["real_time"] * TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)


def counters(bench):
    return {
        key: value
        for key, value in bench.items()
        if key not in STANDARD_KEYS and isinstance(value, (int, float))
    }


def rel_change(old, new):
    if old == 0:
        return float("inf") if new != 0 else 0.0
    return (new - old) / abs(old)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.10)
    parser.add_argument("--fail-on-regression", action="store_true")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    flagged = []

    for name in sorted(current):
        if name not in baseline:
            print(f"NEW       {name} (no baseline entry)")
            continue
        old, new = baseline[name], current[name]

        change = rel_change(real_time_ns(old), real_time_ns(new))
        status = "ok"
        if change > args.threshold:
            status = "REGRESSION"
            flagged.append(
                f"{name}: real_time {change:+.1%} "
                f"({real_time_ns(old):.0f}ns -> {real_time_ns(new):.0f}ns)")
        elif change < -args.threshold:
            status = "improved"
        print(f"{status:10} {name} real_time {change:+.1%}")

        old_counters = counters(old)
        for key, new_value in sorted(counters(new).items()):
            if key not in old_counters:
                continue
            drift = rel_change(old_counters[key], new_value)
            if is_latency_key(key):
                if drift > args.threshold:
                    flagged.append(
                        f"{name}: latency {key} {drift:+.1%} "
                        f"({old_counters[key]:g} -> {new_value:g})")
                    print(f"{'LATENCY':10} {name} latency {key} {drift:+.1%}")
                elif drift < -args.threshold:
                    print(f"{'improved':10} {name} latency {key} {drift:+.1%}")
            elif abs(drift) > args.threshold:
                flagged.append(
                    f"{name}: counter {key} {drift:+.1%} "
                    f"({old_counters[key]:g} -> {new_value:g})")
                print(f"{'DRIFT':10} {name} counter {key} {drift:+.1%}")

    for name in sorted(set(baseline) - set(current)):
        print(f"GONE      {name} (present in baseline only)")

    if flagged:
        print(f"\n{len(flagged)} finding(s) above the {args.threshold:.0%} threshold:")
        for finding in flagged:
            print(f"  {finding}")
            print(f"::warning title=perf regression::{finding}")
    else:
        print(f"\nno findings above the {args.threshold:.0%} threshold")

    return 1 if (flagged and args.fail_on_regression) else 0


if __name__ == "__main__":
    sys.exit(main())
