// Fixture: unordered iteration in an ordering-sensitive directory.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fibbing::igp {

struct Flooder {
  std::unordered_map<std::uint32_t, int> pending_;
  std::unordered_set<std::uint32_t> seen_;

  std::vector<std::uint32_t> bad_range_for() const {
    std::vector<std::uint32_t> out;
    for (const auto& [id, metric] : pending_) {  // finding: unordered-iter
      out.push_back(id);
    }
    return out;
  }

  std::uint64_t bad_iterator_loop() const {
    std::uint64_t sum = 0;
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // finding
      sum += *it;
    }
    return sum;
  }

  std::uint64_t bad_free_function_loop() const {
    std::uint64_t sum = 0;
    for (auto it = std::begin(seen_); it != std::end(seen_); ++it) {  // finding
      sum += *it;
    }
    return sum;
  }

  bool ok_lookup(std::uint32_t id) const { return seen_.contains(id); }
};

}  // namespace fibbing::igp
