#pragma once

#include <cstdint>

// Counter-ish members outside src/obs/ must register into the unified
// metrics registry (obs-registered): every member below is a finding.

namespace fixture {

struct Counters {
  std::uint64_t packets = 0;
};

class FloodMeter {
 public:
  // lint:obs-registered-ok()
  std::uint64_t empty_reason_count_ = 0;

 private:
  std::uint64_t flood_count_ = 0;
  Counters counters_;
  // obs:registered(nosuch)
  std::uint64_t unmatched_count_ = 0;
};

}  // namespace fixture
