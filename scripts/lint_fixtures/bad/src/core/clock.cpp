// Fixture: every wall-clock read the linter must catch.
#include <chrono>
#include <ctime>

namespace fibbing::core {

double bad_chrono_now() {
  const auto t = std::chrono::steady_clock::now();  // finding: wall-clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // finding
}

long bad_ctime() {
  return static_cast<long>(std::time(nullptr));  // finding: wall-clock
}

// lint:wall-clock-ok()  <- finding: waiver without a reason
long bad_waiver() { return std::time(nullptr); }

// lint:wall-clock-ok(fixture: a properly waived read is not a finding)
long good_waiver() { return std::time(nullptr); }

double ok_simulated_time(double now) { return now; }  // next_time() is fine

}  // namespace fibbing::core
