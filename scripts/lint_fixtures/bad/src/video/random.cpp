// Fixture: raw randomness outside util/rng.
#include <cstdlib>
#include <random>

namespace fibbing::video {

int bad_crand() {
  return rand() % 6;  // finding: randomness
}

void bad_seed(unsigned s) {
  srand(s);  // finding: randomness
}

unsigned bad_device() {
  std::random_device rd;  // finding: randomness
  return rd();
}

double bad_engine(unsigned seed) {
  std::mt19937 engine(seed);  // finding: randomness
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
}

// lint:randomness-ok(fixture: seed-derivation helper shared with util::Rng)
unsigned waived_engine(unsigned seed) { return std::mt19937(seed)(); }

int ok_strand_is_not_rand(int strand) { return strand; }

}  // namespace fibbing::video
