#pragma once
// Fixture: Status/Result declarations missing [[nodiscard]].
#include <string_view>

#include "util/result.hpp"

namespace fibbing::net {

struct Endpoint {
  int port = 0;
};

util::Status validate(const Endpoint& ep);  // finding: nodiscard

util::Result<Endpoint> parse_endpoint(std::string_view text);  // finding

class Listener {
 public:
  static util::Result<Listener> open(const Endpoint& ep);  // finding

  // Attributes may not appear on friend declarations; not a finding.
  friend util::Result<Listener> reopen(const Listener& from);

  [[nodiscard]] util::Status close();  // compliant: not a finding
};

}  // namespace fibbing::net
