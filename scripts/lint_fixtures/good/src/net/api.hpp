#pragma once
// Fixture: compliant Status/Result declarations, plus look-alikes the
// linter must not flag.
#include <string_view>

#include "util/result.hpp"

namespace fibbing::net {

struct Endpoint {
  int port = 0;
};

[[nodiscard]] util::Status validate(const Endpoint& ep);

// The attribute on its own line above the declaration also counts.
[[nodiscard]]
util::Result<Endpoint> parse_endpoint(std::string_view text);

// lint:nodiscard-ok(fixture: pass-through helper, caller already owns status)
inline util::Status consume(util::Status status) { return status; }

class Listener {
 public:
  // A comment or string mentioning rand() or steady_clock is not a read.
  [[nodiscard]] static util::Result<Listener> open(const Endpoint& ep);

  [[nodiscard]] const char* name() const { return "rand() steady_clock"; }
};

}  // namespace fibbing::net
