// Fixture: deterministic patterns the linter must accept in an
// ordering-sensitive directory.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fibbing::igp {

struct Flooder {
  std::unordered_map<std::uint32_t, int> pending_;
  std::map<std::uint32_t, int> ordered_;

  std::vector<std::uint32_t> sorted_keys() const {
    std::vector<std::uint32_t> out;
    out.reserve(pending_.size());
    // lint:unordered-iter-ok(hash order never escapes: out is sorted below)
    for (const auto& [id, metric] : pending_) out.push_back(id);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<std::uint32_t> map_is_ordered() const {
    std::vector<std::uint32_t> out;
    for (const auto& [id, metric] : ordered_) out.push_back(id);
    return out;
  }

  bool lookup(std::uint32_t id) const { return pending_.contains(id); }

  // Membership tests touch .end() without iterating: hash order never
  // escapes, so these must stay clean.
  bool lookup_via_find(std::uint32_t id) const {
    return pending_.find(id) != pending_.end();
  }
};

}  // namespace fibbing::igp
