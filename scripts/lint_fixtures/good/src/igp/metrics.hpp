#pragma once

#include <cstdint>
#include <functional>
#include <string>

// The accepted obs-registered forms: a registration annotation whose key
// prefix-matches a metric name registered somewhere in the tree, and a
// reasoned waiver for members that are not metrics.

namespace fixture {

struct Counters {
  std::uint64_t packets = 0;
};

class Registry {
 public:
  void register_callback(const std::string& name, std::function<double()> fn);
};

class FloodMeter {
 public:
  void register_metrics(Registry& registry) {
    registry.register_callback("igp.floods",
                               [this] { return double(flood_count_); });
  }

 private:
  // obs:registered(igp.floods)
  std::uint64_t flood_count_ = 0;
  Counters counters_;  // obs:registered(igp)
  // lint:obs-registered-ok(structural size, not a metric)
  std::uint64_t slot_count_ = 0;
};

}  // namespace fixture
