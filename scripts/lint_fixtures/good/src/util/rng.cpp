// Fixture: util/rng.* is the one place engine construction is allowed.
#include <random>

namespace fibbing::util {

unsigned long long fixture_engine(unsigned long long seed) {
  std::mt19937_64 engine(seed);
  return engine();
}

}  // namespace fibbing::util
