#!/usr/bin/env python3
"""Re-emit clang-tidy / clang-format diagnostics as GitHub ::error lines.

Both tools print GCC-style `file:line:col: warning|error: message [check]`
diagnostics; CI pipes their output through this filter so findings surface as
inline PR annotations (the same pattern scripts/compare_bench.py uses for
perf regressions). All input is forwarded unchanged for the raw log; exit
status is 1 iff any diagnostic was seen, which is what fails the job.

Usage: clang-tidy ... 2>&1 | python3 scripts/annotate_diagnostics.py --tool clang-tidy
"""

import argparse
import os
import re
import sys

DIAG_RE = re.compile(r"^(?P<file>[^\s:]+):(?P<line>\d+):(?P<col>\d+):\s+"
                     r"(?:warning|error):\s+(?P<message>.*)$")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tool", default="clang-tidy",
                        help="annotation title prefix (clang-tidy, clang-format)")
    parser.add_argument("--root", default=".",
                        help="paths are rewritten relative to this directory "
                             "so annotations anchor in the checkout")
    args = parser.parse_args(argv)

    count = 0
    for line in sys.stdin:
        sys.stdout.write(line)
        m = DIAG_RE.match(line.rstrip())
        if not m:
            continue
        path = os.path.relpath(os.path.abspath(m.group("file")),
                               os.path.abspath(args.root))
        if path.startswith(".."):
            continue  # diagnostic in a system or third-party header
        count += 1
        print(f"::error file={path},line={m.group('line')},col={m.group('col')},"
              f"title={args.tool}::{m.group('message')}")
    print(f"{args.tool}: {count} diagnostic(s)" if count else f"{args.tool}: clean")
    return 1 if count else 0


if __name__ == "__main__":
    sys.exit(main())
