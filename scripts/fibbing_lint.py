#!/usr/bin/env python3
"""fibbing-lint: determinism & concurrency checks the compiler can't make.

The repo's headline guarantee is that any shard count replays bit-identically
(tests/shard_test.cpp). The dynamic tests sweep a handful of shard counts;
this linter closes the gaps they can't: sources of nondeterminism that only
bite on some machine, hash seed, or schedule.

Checks (waive a line with `// lint:<check>-ok(<reason>)`, same line or the
line directly above; the reason is mandatory):

  wall-clock      wall-clock reads (std::chrono clocks' now(), gettimeofday,
                  clock_gettime, std::time). Simulated components take time
                  from util::Scheduler::now(); wall-clock reads make replays
                  machine-dependent.
  randomness      rand()/srand(), std::random_device, raw std::mt19937 (and
                  friends) anywhere outside src/util/rng.*. All randomness
                  flows through util::Rng, seeded explicitly, so whole-system
                  runs are reproducible and fork() keeps streams independent.
  unordered-iter  range-for / .begin() iteration over std::unordered_map or
                  std::unordered_set in the ordering-sensitive directories
                  (src/igp, src/proto, src/core, src/util/shard_pool*).
                  Explicit iterator for-loops are caught too: a for-header
                  naming the container through std::begin/std::end or
                  `.end()` counts as iteration (membership tests like
                  `m.find(k) != m.end()` outside for-headers do not).
                  Iteration order there can reach floods, wire encodings,
                  callbacks, or counters -- all surfaces the shard-determinism
                  property tests compare bit-for-bit.
  nodiscard       header declarations returning util::Status / util::Result<T>
                  must carry [[nodiscard]]: a dropped Status is a silently
                  ignored failure (the class-level [[nodiscard]] covers the
                  type; the per-declaration attribute keeps the API surface
                  greppable and survives aliasing through auto&&).
  obs-registered  counter-ish members (`*_count_` / `*counters_`) declared in
                  src/ outside src/obs/ must flow into the unified metrics
                  registry: annotate the declaration (same line or the line
                  above) with `// obs:registered(<key>)` where <key> is a
                  prefix of a metric name registered somewhere in the tree
                  (registry.counter/gauge/histogram("...") or
                  register_callback("...", ...)), or waive with a written
                  reason. Keeps FibbingService::telemetry_json the one
                  complete snapshot instead of re-scattering ad-hoc counters.

Exit status: 0 clean, 1 findings, 2 usage error. --github emits findings as
GitHub Actions `::error` annotations in addition to the human lines.
"""

import argparse
import os
import re
import sys

SENSITIVE_PREFIXES = ("src/igp/", "src/proto/", "src/core/", "src/util/shard_pool")
RANDOMNESS_ALLOWED = ("src/util/rng.",)
NODISCARD_ALLOWED = ("src/util/result.hpp",)  # defines the [[nodiscard]] classes
DEFAULT_PATHS = ("src", "tests", "bench", "examples")
CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

WAIVER_RE = re.compile(r"lint:([a-z-]+)-ok\(([^)]*)\)")

WALL_CLOCK_RES = [
    re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\b"),
    re.compile(r"\bstd::time\s*\("),
    re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|&)"),
]
RANDOMNESS_RES = [
    re.compile(r"\brand\s*\("),
    re.compile(r"\bsrand\b"),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bmt19937(?:_64)?\b"),
    re.compile(r"\b(?:default_random_engine|minstd_rand0?|ranlux\w+|knuth_b)\b"),
]
UNORDERED_DECL_RES = [
    # `std::unordered_map<K, V> name;` / `= ...` / `{...}` member and locals.
    re.compile(r"unordered_(?:map|set|multimap|multiset)<.*>\s+(\w+)\s*[;={]"),
    # `const std::unordered_map<K, V>& name,` parameters.
    re.compile(r"unordered_(?:map|set|multimap|multiset)<.*>\s*[&*]\s*(\w+)\s*[,)]"),
]
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*[^:]:([^:].*)")
BEGIN_ITER_RE = re.compile(r"(\w+)(?:\.|->)c?begin\s*\(")
# Explicit iterator loops: a classic for-header that names the container via
# the free-function iterators or its own `.end()` (the begin call may sit on
# an earlier line or behind std::begin). Only for-headers are considered, so
# membership tests (`m.find(k) != m.end()` in an if/while) never match.
FOR_HEADER_RE = re.compile(r"\bfor\s*\((.*)")
STD_BEGIN_END_RE = re.compile(r"\bstd::c?r?(?:begin|end)\s*\(\s*(\w+)\s*\)")
MEMBER_END_RE = re.compile(r"(\w+)(?:\.|->)c?r?end\s*\(")
# `friend` is excluded: attributes may not appear on friend declarations.
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:(?:virtual|static|constexpr|inline|explicit)\s+)*"
    r"(?:util::)?(?:Status|Result<[^;=]*>)\s+[\w:]+\s*\("
)
# A member *declaration* whose name says "I am a counter": `<type> foo_count_`
# or `<type> ...counters_`, optionally guarded/initialized. Anchored on the
# type words so accessor calls and usages never match.
OBS_MEMBER_RE = re.compile(
    r"^\s*(?:[\w:<>,]+(?:\s*[&*])?\s+)+(\w+_count_|\w*counters_)\s*"
    r"(?:FIB_GUARDED_BY\([^)]*\)\s*)?(?:=[^;{]*)?[;{]"
)
OBS_ANNOTATION_RE = re.compile(r"obs:registered\(([^)]*)\)")
REGISTER_METRIC_RES = [
    re.compile(r'register_callback\(\s*"([^"]+)"'),
    re.compile(r'\b(?:counter|gauge|histogram)\(\s*"([^"]+)"'),
]

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
LINE_COMMENT_RE = re.compile(r"//.*$")


class Finding:
    def __init__(self, rel, line_no, check, message):
        self.rel, self.line_no, self.check, self.message = rel, line_no, check, message

    def human(self):
        return f"{self.rel}:{self.line_no}: [{self.check}] {self.message}"

    def github(self):
        return (f"::error file={self.rel},line={self.line_no},"
                f"title=fibbing-lint {self.check}::{self.message}")


def strip_code(line, in_block_comment):
    """Return (code-only text, still-in-block-comment). Strings are blanked so
    words inside log messages never match; comments are removed entirely
    (waivers are parsed from the raw line separately)."""
    out, i = [], 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i, in_block_comment = end + 2, False
            continue
        if line.startswith("/*", i):
            i, in_block_comment = i + 2, True
            continue
        if line.startswith("//", i):
            break
        if line[i] == '"':
            m = STRING_RE.match(line, i)
            if m:
                out.append('""')
                i = m.end()
                continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block_comment


def waivers_for(lines, idx):
    """Waivers covering line idx (0-based): same line or the line above."""
    found = {}
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            for m in WAIVER_RE.finditer(lines[j]):
                found[m.group(1)] = m.group(2).strip()
    return found


def collect_unordered_symbols(files):
    """Identifiers declared as unordered containers anywhere in the scanned
    tree (members, locals, parameters). A name-level table, not a type
    resolver: good enough because the codebase keeps one declaration per line
    and unique member names."""
    symbols = set()
    for _, _, lines in files:
        in_block = False
        for line in lines:
            code, in_block = strip_code(line, in_block)
            if "unordered_" not in code:
                continue
            for decl_re in UNORDERED_DECL_RES:
                for m in decl_re.finditer(code):
                    symbols.add(m.group(1))
    return symbols


def collect_registered_metrics(files):
    """Metric names registered into obs::Registry anywhere in the scanned
    tree. Parsed from RAW lines on purpose: the names live inside string
    literals, which strip_code blanks. Concatenated names
    (`histogram("prefix." + key)`) contribute their literal prefix, which is
    exactly what the prefix-matched annotations need."""
    names = set()
    for _, _, lines in files:
        for line in lines:
            for metric_re in REGISTER_METRIC_RES:
                for m in metric_re.finditer(line):
                    names.add(m.group(1))
    return names


def obs_key_for(lines, idx):
    """The `obs:registered(<key>)` annotation covering line idx, or None."""
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = OBS_ANNOTATION_RE.search(lines[j])
            if m:
                return m.group(1).strip()
    return None


def check_line(rel, code, symbols, metrics, obs_key):
    """Yield (check, message) pairs for one comment/string-stripped line."""
    for clock_re in WALL_CLOCK_RES:
        m = clock_re.search(code)
        if m:
            yield ("wall-clock",
                   f"wall-clock read `{m.group(0).strip()}`: simulated components "
                   "take time from util::Scheduler::now()")
            break
    if not rel.startswith(RANDOMNESS_ALLOWED):
        for rand_re in RANDOMNESS_RES:
            m = rand_re.search(code)
            if m:
                yield ("randomness",
                       f"raw randomness `{m.group(0).strip()}` outside util/rng: "
                       "take a seeded util::Rng (or fork() one) instead")
                break
    if rel.startswith(SENSITIVE_PREFIXES):
        iterated = None
        range_for = RANGE_FOR_RE.search(code)
        if range_for:
            seq = range_for.group(1)
            if "unordered_" in seq:
                iterated = seq.strip().rstrip(") {")
            else:
                # A name followed by `(` is a call whose return value has its
                # own ordering contract, not the container itself.
                for name in re.findall(r"\b\w+\b(?!\s*\()", seq):
                    if name in symbols:
                        iterated = name
                        break
        if iterated is None:
            for m in BEGIN_ITER_RE.finditer(code):
                if m.group(1) in symbols:
                    iterated = m.group(1)
                    break
        if iterated is None and not range_for:
            for_header = FOR_HEADER_RE.search(code)
            if for_header:
                header = for_header.group(1)
                for end_re in (STD_BEGIN_END_RE, MEMBER_END_RE):
                    for m in end_re.finditer(header):
                        if m.group(1) in symbols:
                            iterated = m.group(1)
                            break
                    if iterated is not None:
                        break
        if iterated is not None:
            yield ("unordered-iter",
                   f"iteration over unordered container `{iterated}` in an "
                   "ordering-sensitive directory: use a deterministic order "
                   "(sort, or std::map) or waive with the reason order cannot "
                   "escape")
    if (rel.startswith("src/") and rel.endswith((".hpp", ".h"))
            and not rel.startswith(NODISCARD_ALLOWED)):
        if (NODISCARD_DECL_RE.search(code) and "[[nodiscard]]" not in code
                and "operator" not in code and "using " not in code):
            yield ("nodiscard",
                   "declaration returning util::Status/util::Result must be "
                   "[[nodiscard]]: a dropped status is a silently ignored failure")
    if rel.startswith("src/") and not rel.startswith("src/obs/"):
        m = OBS_MEMBER_RE.match(code)
        if m:
            member = m.group(1)
            if obs_key is None:
                yield ("obs-registered",
                       f"counter member `{member}` is not registered into "
                       "obs::Registry: annotate the declaration with "
                       "`// obs:registered(<metric prefix>)` (and register it, "
                       "e.g. in FibbingService::register_metrics_) or waive "
                       "with the reason it is not a metric")
            elif not any(name.startswith(obs_key) for name in metrics):
                yield ("obs-registered",
                       f"`obs:registered({obs_key})` on `{member}` matches no "
                       "registered metric name: register it (counter/gauge/"
                       "histogram or register_callback) or fix the prefix")


def lint_files(files, symbols, metrics):
    findings = []
    for _, rel, lines in files:
        in_block = False
        prev_code = ""
        for idx, line in enumerate(lines):
            code, in_block = strip_code(line, in_block)
            waived = waivers_for(lines, idx)
            obs_key = obs_key_for(lines, idx)
            for check, message in check_line(rel, code, symbols, metrics, obs_key):
                if check == "nodiscard" and "[[nodiscard]]" in prev_code:
                    continue  # attribute on its own line above the declaration
                if check in waived:
                    if not waived[check]:
                        findings.append(Finding(
                            rel, idx + 1, check,
                            f"waiver `lint:{check}-ok(...)` needs a written reason"))
                    continue
                findings.append(Finding(rel, idx + 1, check, message))
            if code.strip():
                prev_code = code
    return findings


def gather(root, paths):
    files = []
    for path in paths:
        abs_path = os.path.join(root, path)
        if os.path.isfile(abs_path):
            candidates = [abs_path]
        else:
            candidates = [os.path.join(dirpath, name)
                          for dirpath, _, names in os.walk(abs_path)
                          for name in names]
        for candidate in sorted(candidates):
            if not candidate.endswith(CXX_EXTENSIONS):
                continue
            rel = os.path.relpath(candidate, root).replace(os.sep, "/")
            with open(candidate, encoding="utf-8", errors="replace") as fh:
                files.append((candidate, rel, fh.read().splitlines()))
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories relative to --root "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--root", default=".",
                        help="repository root the paths (and the sensitive-"
                             "directory rules) are resolved against")
    parser.add_argument("--github", action="store_true",
                        help="also emit GitHub Actions ::error annotations")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.root):
        print(f"fibbing-lint: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2
    files = gather(args.root, args.paths)
    symbols = collect_unordered_symbols(files)
    metrics = collect_registered_metrics(files)
    findings = lint_files(files, symbols, metrics)

    for finding in findings:
        print(finding.human())
        if args.github:
            print(finding.github())
    scanned = len(files)
    if findings:
        print(f"fibbing-lint: {len(findings)} finding(s) in {scanned} file(s)")
        return 1
    print(f"fibbing-lint: clean ({scanned} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
